"""Cost model for plans: measured (oracle) and estimated (static).

Two interchangeable cost functions drive the optimizer:

* :func:`measure` — clone Σ, actually evaluate the plan with the
  definitional evaluator, read the network statistics and the virtual
  completion time.  Exact by construction; affordable because Σ in this
  reproduction is in-memory.  This is the reference the estimator is
  validated against (ablation A1).
* :class:`CostEstimator` — a static model walking the expression:
  document sizes come from Σ, query selectivities from a statistics
  table (default applied when unknown), link costs from the topology.
  No evaluation happens; mis-estimation is visible in A1.

The scalar ordering combines completion time with a per-byte tax so that
plans tying on time are separated by traffic (the paper's experiments
talk about both shipped volume and response time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..axml.document import ANY_PROVIDER, ServiceCall
from ..errors import FragmentUnavailableError
from ..peers.service import DeclarativeService, _doc_references
from ..peers.system import AXMLSystem
from ..xmlcore.model import Element, iter_elements, tree_size
from ..xmlcore.serializer import serialize
from .evaluator import ExpressionEvaluator, _as_forest
from .planspace import PlanCache, doc_epoch_signature
from .expressions import (
    ANY,
    DocDest,
    DocExpr,
    EvalAt,
    Expression,
    FragmentedDoc,
    Gather,
    GenericDoc,
    GenericService,
    NodesDest,
    PeerDest,
    QueryApply,
    QueryRef,
    Send,
    Seq,
    ServiceCallExpr,
    TreeExpr,
)
from .rules import Plan
from .serialize import expression_fingerprint, expression_size

__all__ = ["Cost", "Statistics", "measure", "CostEstimator"]

#: Default fraction of a document a selection query retains when no
#: statistic is registered for it.
DEFAULT_SELECTIVITY = 0.25


@dataclass(frozen=True)
class Cost:
    """What a plan costs: bytes moved, messages sent, completion time."""

    bytes: int
    messages: int
    time: float

    #: weight of one shipped byte, in seconds, for scalarization; chosen
    #: so a megabyte of avoidable traffic outweighs a few milliseconds.
    BYTE_WEIGHT = 2e-7

    def scalar(self) -> float:
        """Total order used by the optimizer (lower is better)."""
        return self.time + self.bytes * self.BYTE_WEIGHT

    def __lt__(self, other: "Cost") -> bool:
        return self.scalar() < other.scalar()

    def describe(self) -> str:
        return f"{self.bytes}B / {self.messages} msgs / {self.time * 1000:.2f}ms"


@dataclass
class Statistics:
    """Optimizer statistics: per-query selectivity and result-size hints.

    ``selectivity[name]`` — fraction of input bytes surviving query
    ``name``; ``result_bytes[name]`` — absolute output estimate that, when
    present, wins over the fraction.
    """

    selectivity: Dict[str, float] = field(default_factory=dict)
    result_bytes: Dict[str, int] = field(default_factory=dict)
    default_selectivity: float = DEFAULT_SELECTIVITY

    def query_output_bytes(self, name: Optional[str], input_bytes: int) -> int:
        if name and name in self.result_bytes:
            return self.result_bytes[name]
        fraction = self.selectivity.get(name, self.default_selectivity)
        return max(1, int(input_bytes * fraction))

    def memo_token(self) -> Tuple:
        """Hashable digest of everything that changes an estimate.

        Salts the :class:`~repro.core.planspace.PlanCache` subtree memo,
        so two estimators sharing one cache with *different* statistics
        never replay each other's deltas.
        """
        return (
            tuple(sorted(self.selectivity.items())),
            tuple(sorted(self.result_bytes.items())),
            self.default_selectivity,
        )


class _UnsampledCall(Exception):
    """Internal: an embedded call had no invocation sample to graft."""


def _payload_digest(payloads: Tuple) -> int:
    """Process-local content digest of a call's parameter forest."""
    return hash("".join(serialize(p) for p in payloads))


def _static_payloads(params) -> Optional[Tuple]:
    """Parameter trees when every param is a literal (else ``None``).

    Only statically-known parameter values can be sampled; anything
    computed (doc reads, nested calls) falls back to the statistics
    table.  Literals holding unactivated ``sc`` nodes are excluded too —
    their evaluation would fire the calls first.
    """
    trees = []
    for param in params:
        if not isinstance(param, TreeExpr):
            return None
        for node in iter_elements(param.tree):
            if node.is_service_call() and node.get("activated") != "true":
                return None
        trees.append(param.tree)
    return tuple(trees)


def measure(plan: Plan, system: AXMLSystem, pick_policy=None) -> Cost:
    """Oracle cost: evaluate on a clone of Σ, return the real accounting."""
    twin = system.clone()
    evaluator = ExpressionEvaluator(twin, pick_policy)
    outcome = evaluator.eval(plan.expr, plan.site)
    stats = twin.network.stats
    return Cost(stats.bytes, stats.messages, outcome.completed_at)


class CostEstimator:
    """Static, no-execution cost estimation.

    The walk returns, per sub-expression, the estimated value size (bytes
    at the evaluation site) and accumulates transfer bytes / messages /
    time into the running totals.  Compute time is estimated from input
    sizes and the hosting peer's speed — coarser than the evaluator's
    charging but monotone in the same quantities.

    With a :class:`~repro.core.planspace.PlanCache` attached the walk is
    *incremental*: each (subexpression, site) pair's contribution —
    value size plus the bytes/messages/time it adds — is memoized by
    structural fingerprint, so re-costing a
    :class:`~repro.core.rules.Rewrite` only walks the rewritten spine
    and re-uses every untouched subtree from the table.  Per-peer
    document sizes and compiled logical plans (the statistics fallback)
    are memoized in the same cache, which the
    :class:`~repro.workloads.harness.DifferentialHarness` shares across
    a whole sweep.  The memo assumes Σ's documents and statistics are
    stable; clear the cache after mutating the system.
    """

    ENVELOPE = 64  # keep aligned with Message.ENVELOPE_OVERHEAD

    def __init__(self, system: AXMLSystem, statistics: Optional[Statistics] = None,
                 count_bytes: bool = True, count_time: bool = True,
                 cache: Optional[PlanCache] = None, pick_policy=None) -> None:
        self.system = system
        self.statistics = statistics or Statistics()
        #: ablation switches (A1): ignore byte or time terms entirely.
        self.count_bytes = count_bytes
        self.count_time = count_time
        #: memo for subtree deltas / doc sizes / compiled plans (optional).
        self.cache = cache
        #: generic references resolve through the *same* registry pick the
        #: evaluator uses, so the estimated plan prices the copy that would
        #: actually serve the read (ranking parity with the oracle).
        self.pick_policy = pick_policy
        #: instance-local sample memos used when no shared cache is
        #: attached, so an uncached estimator still invokes each service
        #: and query sample once instead of once per candidate plan
        self._service_samples: Dict[Tuple, Tuple] = {}
        self._doc_values: Dict[Tuple, object] = {}
        self._apply_samples: Dict[Tuple, Tuple[int, int]] = {}

    # -- public -------------------------------------------------------------
    def estimate(self, plan: Plan) -> Cost:
        self._bytes = 0
        self._messages = 0
        self._time = 0.0
        # re-read each run: Statistics are mutable and the salt keeps
        # cache entries honest if they changed (count_bytes/count_time
        # need no salt — raw deltas are masked only at the very end)
        self._memo_salt = self.statistics.memo_token()
        if self.pick_policy is not None:
            # picks shape the estimate: estimators with different policies
            # sharing one cache must not replay each other's deltas
            self._memo_salt = self._memo_salt + (
                type(self.pick_policy).__name__,
            )
        epoch_sig = doc_epoch_signature(self.system, plan.expr)
        if epoch_sig:
            self._memo_salt = self._memo_salt + (epoch_sig,)
        self._visit(plan.expr, plan.site)
        return Cost(
            self._bytes if self.count_bytes else 0,
            self._messages,
            self._time if self.count_time else 0.0,
        )

    __call__ = estimate

    # -- transfer helpers --------------------------------------------------------
    def _charge_transfer(self, src: str, dst: str, size: int) -> None:
        if src == dst:
            return
        size += self.ENVELOPE
        self._bytes += size
        self._messages += 1
        try:
            links = self.system.network.route(src, dst)
        except Exception:
            return
        self._time += sum(l.latency + size / l.bandwidth for l in links)

    def _charge_compute(self, peer_id: str, work_bytes: int) -> None:
        peer = self.system.peer(peer_id)
        # ~1 work unit (tree node) per 32 serialized bytes, a rough census
        self._time += (work_bytes / 32.0) / peer.compute_speed

    def _charge_batch(self, src: str, dst: str, sizes) -> None:
        """``k`` back-to-back messages on one route (a response forest).

        The link is a serial resource: transmission times add up while
        propagation latency overlaps across the pipeline, so the batch
        completes after one route latency plus the summed transmissions —
        not after ``max`` of independent transfers.
        """
        if src == dst or not sizes:
            return
        try:
            links = self.system.network.route(src, dst)
        except Exception:
            links = None
        for size in sizes:
            size += self.ENVELOPE
            self._bytes += size
            self._messages += 1
            if links:
                self._time += sum(size / l.bandwidth for l in links)
        if links:
            self._time += sum(l.latency for l in links)

    # -- sizes ------------------------------------------------------------------
    def _doc_bytes(self, name: str, home: str) -> int:
        # written documents key by epoch too, so a mutation orphans the
        # stale size instead of serving it; epoch-0 keys keep the
        # historical (name, home) shape
        epoch = self.system.doc_epoch(name)
        key = (name, home) if not epoch else (name, home, epoch)
        if self.cache is not None:
            cached = self.cache.doc_sizes.get(key)
            if cached is not None:
                return cached
        peer = self.system.peer(home)
        if peer.has_document(name):
            size = peer.document(name).serialized_size()
        else:
            size = 1024  # unknown (e.g. temp doc created mid-plan): nominal
        if self.cache is not None:
            self.cache.doc_sizes[key] = size
        return size

    def _doc_calls(self, name: str, home: str) -> Tuple:
        """Embedded service-call profiles of a stored document (memoized).

        The evaluator *activates* a document on first read (definition
        (6)): every embedded ``sc`` fires — params ship to the provider,
        the provider computes, results ship back and replace the call
        node.  An estimator blind to activation prices AXML documents as
        inert trees and mis-ranks every plan that decides *where* the
        activation traffic lands.  The profile is static per (document,
        home, epoch): ``(provider, service, param payloads, param bytes,
        sc-node bytes, forward peers, params digest)`` per call, resolved
        and charged at estimate time.
        """
        epoch = self.system.doc_epoch(name)
        key = (name, home) if not epoch else (name, home, epoch)
        if self.cache is not None:
            hit = self.cache.doc_profiles.get(key)
            if hit is not None:
                return hit
        calls = []
        peer = self.system.peer(home)
        if peer.has_document(name):
            stack = [peer.document(name)]
            while stack:
                node = stack.pop()
                if not isinstance(node, Element):
                    continue
                if node.is_service_call():
                    if node.get("activated") == "true":
                        continue
                    try:
                        call = ServiceCall.parse(node)
                    except Exception:
                        continue  # malformed sc: the evaluator skips it too
                    payloads = tuple(call.param_payloads())
                    calls.append((
                        call.provider,
                        call.service,
                        payloads,
                        sum(p.serialized_size() for p in payloads),
                        node.serialized_size(),
                        tuple(
                            getattr(t, "peer", home) for t in call.forwards
                        ),
                        _payload_digest(payloads),
                    ))
                    continue
                stack.extend(node.children)
        profile = tuple(calls)
        if self.cache is not None:
            self.cache.doc_profiles[key] = profile
        return profile

    def _sample_service(
        self, provider: str, service_name: str, payloads: Tuple, digest: int
    ) -> Tuple[Optional[int], Optional[Tuple[int, ...]], Optional[Tuple]]:
        """One deterministic invocation sample: work, item bytes, items.

        Declarative services are visible queries over Σ's stored
        documents — side-effect free and deterministic — so invoking one
        *once* per call site (memoized like a catalog statistic) prices
        its exact compute work and response forest without simulating any
        candidate plan.  Opaque native implementations are never sampled
        (their bodies may have effects): work units are still exact (the
        evaluator charges the same :meth:`Service.work_units`), but the
        response sizes fall back to the statistics table.
        """
        memo = (
            self.cache.service_samples
            if self.cache is not None
            else self._service_samples
        )
        key = (provider, service_name, digest) + self._service_epochs(
            provider, service_name
        )
        hit = memo.get(key)
        if hit is not None:
            return hit
        work: Optional[int] = None
        result_sizes: Optional[Tuple[int, ...]] = None
        result_items: Optional[Tuple] = None
        try:
            peer = self.system.peer(provider)
            service = peer.service(service_name)
            work = service.work_units(list(payloads))
            if getattr(service, "is_declarative", False):
                invocations = getattr(service, "invocations", 0)
                try:
                    responses = service.invoke(list(payloads), peer)
                    result_sizes = tuple(
                        r.serialized_size() for r in responses
                    )
                    result_items = tuple(responses)
                finally:
                    service.invocations = invocations
        except Exception:
            pass  # unknown provider/service: statistics fallback
        sample = (work, result_sizes, result_items)
        memo[key] = sample
        return sample

    def _service_epochs(self, provider: str, service_name: str) -> Tuple:
        """Epoch salt for the host documents a declarative service reads.

        A written host document must orphan the stale invocation sample,
        exactly like :attr:`PlanCache.doc_sizes` keys by epoch.  While
        nothing has been written the salt is ``()`` and keys keep their
        read-only shape.
        """
        epochs = getattr(self.system, "doc_epochs", None)
        if not epochs:
            return ()
        try:
            service = self.system.peer(provider).service(service_name)
        except Exception:
            return ()
        if not isinstance(service, DeclarativeService):
            return ()
        return tuple(
            epochs.get(ref, 0) for ref in _doc_references(service.query)
        )

    def _service_result_bytes(
        self, provider: str, service_name: str, param_bytes: int
    ) -> int:
        """Result-size estimate for one service invocation at ``provider``."""
        result_name = None
        peer = self.system.peer(provider)
        if peer.has_service(service_name):
            service = peer.service(service_name)
            if isinstance(service, DeclarativeService):
                result_name = service.query.name or service_name
        return self.statistics.query_output_bytes(
            result_name, max(param_bytes, 1024)
        )

    def _charge_activation(self, name: str, home: str, size: int) -> int:
        """Charge a document's embedded calls; returns the activated size.

        Calls fire in parallel from the same instant at the document's
        home (the evaluator's fixpoint evaluates sc children from one
        ready time, completion = max); each non-forwarding call's result
        replaces its sc node in the stored tree, so the size shipped
        onward is the *activated* size, not the inert one.
        """
        calls = self._doc_calls(name, home)
        if not calls:
            return size
        base = self._time
        finished = base
        for provider, service_name, payloads, param_bytes, \
                node_bytes, forwards, digest in calls:
            self._time = base
            if provider == ANY_PROVIDER:
                member = self.system.registry.pick_service(
                    service_name, home, self.system, self.pick_policy
                )
                provider, service_name = member.peer, member.name
            # the CALL message: param forest + the service-routing header
            # (Message.size counts key + value + 4 framing bytes)
            header = len("service") + len(service_name) + 4
            self._charge_transfer(home, provider, param_bytes + header)
            work, result_sizes, _ = self._sample_service(
                provider, service_name, payloads, digest
            )
            if work is not None:
                self._time += work / self.system.peer(provider).compute_speed
            else:
                self._charge_compute(provider, param_bytes)
            if result_sizes is None:
                result_sizes = (
                    self._service_result_bytes(
                        provider, service_name, param_bytes
                    ),
                )
            size -= node_bytes
            # every response item is its own RESULT message, pipelined on
            # the provider->caller route (or provider->target for forwards)
            if forwards:
                sent_at = self._time
                done = sent_at
                for target in forwards:
                    self._time = sent_at
                    self._charge_batch(provider, target, result_sizes)
                    done = max(done, self._time)
                self._time = done
            else:
                self._charge_batch(provider, home, result_sizes)
                size += sum(result_sizes)
                if len(result_sizes) > 1:
                    # multi-item responses re-root under a <results> wrapper
                    size += Element("results").serialized_size()
            finished = max(finished, self._time)
        self._time = finished
        return max(size, 1)

    def _doc_value(self, name: str, home: str):
        """``(activated value, memo token)`` of a stored doc, or ``None``.

        The value a plan actually feeds to a query is the *activated*
        document — embedded calls replaced by their responses.  Grafting
        the sampled responses onto a copy of the stored tree materializes
        that value once per (document, epoch, pick policy), giving
        :meth:`_apply_sample` exact inputs without evaluating any plan.
        """
        epoch = self.system.doc_epoch(name)
        key = (name, home) if not epoch else (name, home, epoch)
        calls = self._doc_calls(name, home)
        if any(c[0] == ANY_PROVIDER for c in calls):
            # @any providers resolve through the pick policy: estimators
            # with different policies must not share a materialization
            tag = type(self.pick_policy).__name__ if self.pick_policy else ""
            key = key + (tag,)
        memo = (
            self.cache.doc_values if self.cache is not None else self._doc_values
        )
        hit = memo.get(key)
        if hit is not None:
            return None if hit is False else (hit, key)
        peer = self.system.peer(home)
        if not peer.has_document(name):
            memo[key] = False
            return None
        stored = peer.document(name)
        if not calls:
            # inert tree: the stored document IS the value (read-only use)
            memo[key] = stored
            return stored, key
        try:
            value = self._graft_activation(stored.copy(), home)
        except Exception:
            value = None
        if value is None:
            memo[key] = False
            return None
        memo[key] = value
        return value, key

    def _graft_activation(self, tree: Element, home: str) -> Optional[Element]:
        """Mirror of the evaluator's ``_activate_tree`` on sampled data.

        Replaces every embedded call with its sampled response forest (a
        single item in place, several under a ``<results>`` wrapper,
        nothing for explicit forward lists).  Returns ``None`` when any
        call cannot be sampled — callers then skip materialization.
        """
        if tree.is_service_call():
            if tree.get("activated") == "true":
                return None
            call = ServiceCall.parse(tree)
            provider, service_name = call.provider, call.service
            if provider == ANY_PROVIDER:
                member = self.system.registry.pick_service(
                    service_name, home, self.system, self.pick_policy
                )
                provider, service_name = member.peer, member.name
            payloads = tuple(call.param_payloads())
            _, _, items = self._sample_service(
                provider, service_name, payloads, _payload_digest(payloads)
            )
            if items is None:
                raise _UnsampledCall(service_name)
            if call.forwards:
                return None
            if len(items) == 1:
                return items[0].copy()
            wrapper = Element("results")
            for item in items:
                wrapper.append(item.copy())
            return wrapper
        replacements = []
        for child in list(tree.children):
            if isinstance(child, Element):
                evaluated = self._graft_activation(child, home)
                if evaluated is not child:
                    replacements.append((child, evaluated))
        for old, new in replacements:
            if new is None:
                tree.remove(old)
            else:
                tree.replace_child(old, new)
        return tree

    def _materialize(self, expr: Expression, site: str):
        """Static ``(value tree, memo token)`` of an argument, or ``None``."""
        if isinstance(expr, TreeExpr):
            for node in iter_elements(expr.tree):
                if node.is_service_call() and node.get("activated") != "true":
                    return None  # activation would fire on evaluation
            return expr.tree, expression_fingerprint(expr)
        if isinstance(expr, DocExpr):
            return self._doc_value(expr.name, expr.home)
        if isinstance(expr, GenericDoc):
            member = self.system.registry.pick_document(
                expr.name, site, self.system, self.pick_policy
            )
            return self._doc_value(member.name, member.peer)
        return None

    def _apply_sample(self, query, args, site: str) -> Optional[Tuple[int, int]]:
        """``(result bytes, work units)`` of one query application, or None.

        Queries are pure functions of their arguments (``doc()``-free
        ones — the rest are site-dependent and skipped), so running one
        *once* on the materialized argument values prices its exact
        output and compute work; every candidate plan that moves the same
        application between sites reuses the sample.
        """
        if _doc_references(query):
            return None  # doc() resolves at the evaluation site
        forests = []
        tokens = []
        for arg in args:
            materialized = self._materialize(arg, site)
            if materialized is None:
                return None
            value, token = materialized
            forests.append([value])
            tokens.append(token)
        memo = (
            self.cache.apply_samples
            if self.cache is not None
            else self._apply_samples
        )
        key = (query.source, tuple(tokens))
        hit = memo.get(key)
        if hit is not None:
            return hit
        try:
            result = query.run(*forests)
        except Exception:
            return None
        items = _as_forest(result)
        out_bytes = sum(item.serialized_size() for item in items)
        work = 1 + sum(tree_size(value) for forest in forests for value in forest)
        sample = (out_bytes, work)
        memo[key] = sample
        return sample

    def _plan_estimate(self, head: QueryRef, input_bytes: int) -> Optional[int]:
        """Selectivity from the compiled logical plan, when it compiles.

        Covers the single-``for`` pipeline shape without needing a
        registered statistic; anything the compiler rejects falls back to
        the statistics table's default.
        """
        from ..errors import XQueryError
        from ..xquery.algebra import SourceStats, compile_query

        plan = None
        compiled = False
        if self.cache is not None:
            source = head.query.source
            if source in self.cache.compiled_queries:
                plan = self.cache.compiled_queries[source]
                compiled = True
        if not compiled:
            try:
                plan = compile_query(head.query.module)
            except XQueryError:
                plan = None
            if self.cache is not None:
                self.cache.compiled_queries[head.query.source] = plan
        if plan is None:
            return None
        item_bytes = 100
        stats = SourceStats(
            cardinality=max(1, input_bytes // item_bytes),
            item_bytes=item_bytes,
        )
        return max(1, int(plan.estimate(stats).total_bytes))

    # -- walk -----------------------------------------------------------------
    def _visit(self, expr: Expression, site: str) -> int:
        """Estimated value size at ``site``; totals accumulate as a side effect.

        The memoized path records, per (subexpression fingerprint, site),
        the returned size plus the bytes/messages/time delta this subtree
        contributed, and replays that delta on a hit without recursing —
        re-costing a rewritten plan therefore only walks the nodes the
        rewrite actually changed (plus their ancestors).
        """
        cache = self.cache
        if cache is None:
            return self._visit_node(expr, site)
        key = (self._memo_salt, expression_fingerprint(expr), site)
        hit = cache.subtree_costs.get(key)
        if hit is not None:
            size, d_bytes, d_messages, d_time = hit
            self._bytes += d_bytes
            self._messages += d_messages
            self._time += d_time
            cache.stats.estimator_hits += 1
            return size
        bytes0, messages0, time0 = self._bytes, self._messages, self._time
        size = self._visit_node(expr, site)
        cache.subtree_costs[key] = (
            size,
            self._bytes - bytes0,
            self._messages - messages0,
            self._time - time0,
        )
        cache.stats.estimator_misses += 1
        return size

    def _visit_node(self, expr: Expression, site: str) -> int:
        """Returns estimated size (bytes) of the value at ``site``."""
        if isinstance(expr, TreeExpr):
            size = expr.tree.serialized_size()
            self._charge_transfer(expr.home, site, size)
            return size
        if isinstance(expr, DocExpr):
            size = self._doc_bytes(expr.name, expr.home)
            # first read activates embedded calls at the home (def. (6));
            # what ships onward is the activated document
            size = self._charge_activation(expr.name, expr.home, size)
            self._charge_transfer(expr.home, site, size)
            return size
        if isinstance(expr, GenericDoc):
            # definition (9) exactly as the evaluator resolves it: the
            # registry pick (FirstPolicy when none given) names the copy
            # that will actually serve the read — estimating any other
            # member would rank replica-reading plans differently than
            # the oracle measures them
            member = self.system.registry.pick_document(
                expr.name, site, self.system, self.pick_policy
            )
            return self._visit(DocExpr(member.name, member.peer), site)
        if isinstance(expr, FragmentedDoc):
            catalog = self.system.fragments
            if not catalog.is_fragmented(expr.name):
                return 1024
            # scatter-gather: every fragment is fetched from the same
            # ready instant, so estimated completion is the max over
            # fragments while traffic stays the sum; replicated fragments
            # resolve through the generic registry like _eval_fragment
            total = 0
            base = self._time
            finished = base
            for fragment in catalog.fragments(expr.name):
                live = [
                    pid
                    for pid in fragment.peers
                    if pid in self.system.peers
                    and self.system.peers[pid].alive
                    and self.system.peers[pid].has_document(fragment.name)
                ]
                if not live:
                    raise FragmentUnavailableError(
                        fragment.name, fragment.peers
                    )
                self._time = base
                if fragment.generic is not None:
                    total += self._visit(GenericDoc(fragment.generic), site)
                else:
                    total += self._visit(DocExpr(fragment.name, live[0]), site)
                finished = max(finished, self._time)
            self._time = finished
            return total
        if isinstance(expr, Gather):
            # order-preserving union: parts evaluate in parallel from the
            # same instant — completion is the slowest part, bytes the sum
            total = 0
            base = self._time
            finished = base
            for part in expr.parts:
                self._time = base
                total += self._visit(part, site)
                finished = max(finished, self._time)
            self._time = finished
            return total
        if isinstance(expr, QueryRef):
            size = len(expr.query.source.encode("utf-8"))
            self._charge_transfer(expr.home, site, size)
            return size
        if isinstance(expr, QueryApply):
            # the query head resolves concurrently with the args: the
            # evaluator ships the query text first, evaluates every arg
            # from the same instant, and applies at max(query, args)
            input_bytes = 0
            base = self._time
            finished = base
            name = None
            if isinstance(expr.query, QueryRef):
                name = expr.query.query.name
                self._charge_transfer(
                    expr.query.home, site, len(expr.query.query.source.encode())
                )
                finished = max(finished, self._time)
            for arg in expr.args:
                self._time = base
                input_bytes += self._visit(arg, site)
                finished = max(finished, self._time)
            self._time = finished
            known = (
                name in self.statistics.selectivity
                or name in self.statistics.result_bytes
            )
            if not known and isinstance(expr.query, QueryRef):
                # one application sample beats any selectivity guess:
                # exact output bytes and exact work units, reused by every
                # candidate plan that moves this apply between sites
                sampled = self._apply_sample(expr.query.query, expr.args, site)
                if sampled is not None:
                    out_bytes, work = sampled
                    self._time += work / self.system.peer(site).compute_speed
                    return out_bytes
            self._charge_compute(site, input_bytes)
            if not known and isinstance(expr.query, QueryRef):
                plan_bytes = self._plan_estimate(expr.query, input_bytes)
                if plan_bytes is not None:
                    return plan_bytes
            return self.statistics.query_output_bytes(name, input_bytes)
        if isinstance(expr, ServiceCallExpr):
            provider = expr.provider
            service_name = expr.service
            if provider == ANY:
                # mirror the evaluator's registry pick (live members only,
                # caller's policy) so @any calls price the actual provider
                member = self.system.registry.pick_service(
                    expr.service, site, self.system, self.pick_policy
                )
                provider, service_name = member.peer, member.name
            # params evaluate in parallel, then ship together as one call
            param_bytes = 0
            base = self._time
            finished = base
            for p in expr.params:
                self._time = base
                param_bytes += self._visit(p, site)
                finished = max(finished, self._time)
            self._time = finished
            header = len("service") + len(service_name) + 4
            self._charge_transfer(site, provider, param_bytes + header)
            work = None
            result_sizes = None
            payloads = _static_payloads(expr.params)
            if payloads is not None:
                work, result_sizes, _ = self._sample_service(
                    provider, service_name, payloads, _payload_digest(payloads)
                )
            if work is not None:
                self._time += work / self.system.peer(provider).compute_speed
            else:
                self._charge_compute(provider, param_bytes)
            if result_sizes is None:
                result_sizes = (
                    self._service_result_bytes(
                        provider, service_name, param_bytes
                    ),
                )
            if expr.forwards:
                sent_at = self._time
                done = sent_at
                for target in expr.forwards:
                    self._time = sent_at
                    self._charge_batch(provider, target.peer, result_sizes)
                    done = max(done, self._time)
                self._time = done
                return 0
            self._charge_batch(provider, site, result_sizes)
            return sum(result_sizes)
        if isinstance(expr, Send):
            payload_bytes = self._visit(expr.payload, site)
            hops = [site] + list(expr.via)
            final = _dest_peer_of(expr.dest, site)
            for src, dst in zip(hops, hops[1:] + [final]):
                self._charge_transfer(src, dst, payload_bytes)
            return 0
        if isinstance(expr, EvalAt):
            if expr.peer != site:
                self._charge_transfer(site, expr.peer, expression_size(expr.expr))
            inner = self._visit(expr.expr, expr.peer)
            if inner > 0:
                self._charge_transfer(expr.peer, site, inner)
            return inner
        if isinstance(expr, Seq):
            last = 0
            for step in expr.steps:
                last = self._visit(step, site)
            return last
        return 0


def _dest_peer_of(dest, default: str) -> str:
    if isinstance(dest, PeerDest):
        return dest.peer
    if isinstance(dest, DocDest):
        return dest.peer
    if isinstance(dest, NodesDest) and dest.nodes:
        return dest.nodes[0].peer
    return default
