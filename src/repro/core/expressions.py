"""The expression language E (paper Section 3.1).

Members of E, with their paper counterparts:

* :class:`TreeExpr` — ``t@p``: a literal tree hosted at a peer;
* :class:`DocExpr` — ``d@p``: a named document at a peer;
* :class:`GenericDoc` — ``d@any`` (Section 2.3);
* :class:`FragmentedDoc` — ``d@dist``: a horizontally fragmented document
  resolved through the fragment catalog (:mod:`repro.dist`);
* :class:`Gather` — order-preserving union of independent sub-plans, the
  gather half of scatter-gather evaluation over fragments;
* :class:`QueryRef` — ``q@p``: a query defined at a peer (shippable);
* :class:`GenericService` — ``s@any``;
* :class:`QueryApply` — ``q@p(t1, ..., tn)``;
* :class:`ServiceCallExpr` — an ``sc(...)``-rooted expression tree;
* :class:`Send` — the overloaded ``send(·)`` constructor, with the four
  destination flavours of the paper (peer, node list, named document,
  query deployment) plus an optional explicit ``via`` relay list
  (rule (12) materializes intermediary stops through it);
* :class:`EvalAt` — ``eval@p(e)`` embedded as a sub-expression, which the
  paper uses pervasively on the right-hand side of its rules (e.g. the
  ``send_{p1→p2}(e)`` shorthand *is* ``eval@p1(send(p2, e))``);
* :class:`Seq` — sequential composition (evaluate left to right, value of
  the last step), needed by rule (13) whose rewrite "is only enabled when
  d is available at p, which breaks the parallelism".

Expressions are frozen dataclasses: rewrites construct new trees, so plans
can be enumerated, compared and cached safely.  Section 3.1: "An
expression can be viewed (serialized) as an XML tree" — that serialization
lives in :mod:`repro.core.serialize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple, Union

from ..errors import ExpressionError
from ..xmlcore.model import Element, NodeId
from ..xquery import Query

__all__ = [
    "Expression",
    "TreeExpr",
    "DocExpr",
    "GenericDoc",
    "FragmentedDoc",
    "Gather",
    "QueryRef",
    "GenericService",
    "QueryApply",
    "ServiceCallExpr",
    "Destination",
    "PeerDest",
    "NodesDest",
    "DocDest",
    "Send",
    "EvalAt",
    "Seq",
    "walk",
    "transform",
    "ANY",
]

ANY = "any"


class Expression:
    """Base class for members of E."""

    __slots__ = ()

    def children(self) -> Tuple["Expression", ...]:
        """Direct sub-expressions (used by generic traversal/rewriting)."""
        return ()

    def with_children(self, children: Tuple["Expression", ...]) -> "Expression":
        """Rebuild this node with replacement sub-expressions."""
        if children:
            raise ExpressionError(f"{type(self).__name__} takes no children")
        return self

    def describe(self) -> str:
        """Compact, human-readable rendering (used in plan listings)."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Data and query references
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TreeExpr(Expression):
    """A literal tree at a peer: ``t@p``.

    The tree may contain ``sc`` nodes — evaluating it (definition (1) +
    (6)) activates them.  Frozen-ness is shallow; the evaluator always
    works on copies and never mutates the referenced tree in place.
    """

    tree: Element
    home: str

    def describe(self) -> str:
        return f"tree(<{self.tree.tag}>)@{self.home}"

    def __hash__(self) -> int:
        # structural, not id()-based: equal literals hash alike even when
        # the trees are distinct copies (e.g. across AXMLSystem.clone()),
        # so plan dedup works on content.  The fingerprint is cached on
        # the element, so this is O(1) on finished trees.
        return hash((self.tree.content_fingerprint(), self.home))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TreeExpr)
            and other.home == self.home
            and (
                other.tree is self.tree
                or other.tree.content_fingerprint()
                == self.tree.content_fingerprint()
            )
        )


@dataclass(frozen=True)
class DocExpr(Expression):
    """A named document at a peer: ``d@p``."""

    name: str
    home: str

    def describe(self) -> str:
        return f"{self.name}@{self.home}"


@dataclass(frozen=True)
class GenericDoc(Expression):
    """A generic document ``d@any`` — an equivalence class of replicas."""

    name: str

    def describe(self) -> str:
        return f"{self.name}@any"


@dataclass(frozen=True)
class FragmentedDoc(Expression):
    """A horizontally fragmented document: ``d@dist``.

    Resolved through the system's
    :class:`~repro.dist.catalog.FragmentCatalog`: evaluation fans out to
    every fragment-holding peer (replicated fragments go through the
    generic registry, so pick policies choose), then reassembles the
    fragments' children under the original root in ordinal order — the
    value is byte-identical to the whole document.  The fragment-aware
    rewrites replace the reassembly with pushed, pruned scatter-gather.
    """

    name: str

    def describe(self) -> str:
        return f"{self.name}@dist"


@dataclass(frozen=True)
class Gather(Expression):
    """Order-preserving union of independently evaluated parts.

    Evaluating ``Gather(e1, ..., ek)`` at ``p`` evaluates every part at
    ``p`` from the *same* ready instant (the parts are independent —
    scatter), and concatenates the value forests in part order (gather).
    Completion is the latest part's completion, so fan-out parallelism
    is visible in the virtual clock while per-link traffic is still
    charged for every transfer individually.
    """

    parts: Tuple[Expression, ...]

    def children(self) -> Tuple[Expression, ...]:
        return self.parts

    def with_children(self, children: Tuple[Expression, ...]) -> "Gather":
        return Gather(tuple(children))

    def describe(self) -> str:
        return "gather(" + " | ".join(p.describe() for p in self.parts) + ")"


@dataclass(frozen=True)
class QueryRef(Expression):
    """A query defined at a peer: ``q@p`` (a shippable value)."""

    query: Query
    home: str

    def describe(self) -> str:
        label = self.query.name or "q"
        return f"{label}@{self.home}"

    def __hash__(self) -> int:
        return hash((self.query.source, self.home))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QueryRef)
            and other.query.source == self.query.source
            and other.home == self.home
        )


@dataclass(frozen=True)
class GenericService(Expression):
    """A generic service ``s@any``."""

    name: str

    def describe(self) -> str:
        return f"{self.name}@any"


# ---------------------------------------------------------------------------
# Application and calls
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class QueryApply(Expression):
    """``q(e1, ..., en)`` — apply a query to argument expressions."""

    query: Union[QueryRef, GenericService]
    args: Tuple[Expression, ...] = ()

    def children(self) -> Tuple[Expression, ...]:
        return self.args

    def with_children(self, children: Tuple[Expression, ...]) -> "QueryApply":
        return QueryApply(self.query, tuple(children))

    def describe(self) -> str:
        inner = ", ".join(a.describe() for a in self.args)
        return f"{self.query.describe()}({inner})"


@dataclass(frozen=True)
class ServiceCallExpr(Expression):
    """An ``sc``-rooted expression: provider, service, params, forwards.

    ``provider == ANY`` is a generic call resolved at evaluation time.
    An empty ``forwards`` means "results return to the evaluation site"
    (the default-target behaviour of the AXML model).
    """

    provider: str
    service: str
    params: Tuple[Expression, ...] = ()
    forwards: Tuple[NodeId, ...] = ()

    def children(self) -> Tuple[Expression, ...]:
        return self.params

    def with_children(self, children: Tuple[Expression, ...]) -> "ServiceCallExpr":
        return ServiceCallExpr(
            self.provider, self.service, tuple(children), self.forwards
        )

    def describe(self) -> str:
        inner = ", ".join(p.describe() for p in self.params)
        fw = ""
        if self.forwards:
            fw = ", fw=[" + ", ".join(str(f) for f in self.forwards) + "]"
        return f"sc({self.provider}, {self.service}, [{inner}]{fw})"


# ---------------------------------------------------------------------------
# Send destinations
# ---------------------------------------------------------------------------

class Destination:
    """Where a :class:`Send` delivers (Section 3.1 lists the flavours)."""

    __slots__ = ()

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class PeerDest(Destination):
    """``send(p2, ·)`` — the landing spot is chosen by the receiver."""

    peer: str

    def describe(self) -> str:
        return self.peer


@dataclass(frozen=True)
class NodesDest(Destination):
    """``send([n2@p2, ..., nk@pk], ·)`` — append under specific nodes."""

    nodes: Tuple[NodeId, ...]

    def describe(self) -> str:
        return "[" + ", ".join(str(n) for n in self.nodes) + "]"


@dataclass(frozen=True)
class DocDest(Destination):
    """``send(d@p2, ·)`` — install as a new document named ``d`` at p2."""

    name: str
    peer: str

    def describe(self) -> str:
        return f"{self.name}@{self.peer}"


@dataclass(frozen=True)
class Send(Expression):
    """``send(dest, e)`` — evaluate ``e`` here, ship the result to dest.

    Evaluating a send returns ∅ at the sender (definition (3)); the copy
    crossing the network is a *side effect* on Σ.  ``via`` lists explicit
    intermediary peers the payload stops at (rule (12)): each hop is a
    separate store-and-forward transfer, observable in the accounting.
    """

    dest: Destination
    payload: Expression
    via: Tuple[str, ...] = ()

    def children(self) -> Tuple[Expression, ...]:
        return (self.payload,)

    def with_children(self, children: Tuple[Expression, ...]) -> "Send":
        (payload,) = children
        return Send(self.dest, payload, self.via)

    def describe(self) -> str:
        via = f" via {list(self.via)}" if self.via else ""
        return f"send({self.dest.describe()}{via}, {self.payload.describe()})"


@dataclass(frozen=True)
class EvalAt(Expression):
    """``eval@p(e)`` as a sub-expression.

    Evaluating ``EvalAt(p2, e)`` from peer ``p`` ships the expression tree
    to ``p2`` (code shipping — the expression itself travels, in the
    spirit of mutant query plans), evaluates there, and — unless the
    result is already routed by inner sends/forward lists — ships the
    value back to ``p``.  This single construct expresses the right-hand
    sides of rules (10), (14), (15) and (16).
    """

    peer: str
    expr: Expression

    def children(self) -> Tuple[Expression, ...]:
        return (self.expr,)

    def with_children(self, children: Tuple[Expression, ...]) -> "EvalAt":
        (expr,) = children
        return EvalAt(self.peer, expr)

    def describe(self) -> str:
        return f"eval@{self.peer}({self.expr.describe()})"


@dataclass(frozen=True)
class Seq(Expression):
    """Sequential composition; the value is the last step's value.

    Steps are *strictly ordered in virtual time*: step ``i+1`` starts only
    after step ``i`` completed.  Rule (13) uses this to express the
    materialize-then-reuse plan whose cost is traded against the lost
    parallelism.
    """

    steps: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ExpressionError("Seq requires at least one step")

    def children(self) -> Tuple[Expression, ...]:
        return self.steps

    def with_children(self, children: Tuple[Expression, ...]) -> "Seq":
        return Seq(tuple(children))

    def describe(self) -> str:
        return "seq(" + "; ".join(s.describe() for s in self.steps) + ")"


# ---------------------------------------------------------------------------
# Generic traversal and rewriting
# ---------------------------------------------------------------------------

def walk(expr: Expression) -> Iterator[Expression]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform(
    expr: Expression, visit: Callable[[Expression], Optional[Expression]]
) -> Expression:
    """Bottom-up rewriting: ``visit`` may return a replacement or None.

    Children are transformed first; then ``visit`` sees the (possibly
    rebuilt) node.  Returning ``None`` keeps the node.
    """
    children = expr.children()
    if children:
        new_children = tuple(transform(child, visit) for child in children)
        if any(n is not o for n, o in zip(new_children, children)):
            expr = expr.with_children(new_children)
    replacement = visit(expr)
    return expr if replacement is None else replacement
