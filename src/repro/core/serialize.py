"""Expressions as XML trees (paper Section 3.1).

"An expression can be viewed (serialized) as an XML tree, whose root is
labeled with the expression constructor, and whose children are the
expression parameters."  This serialization is what :class:`EvalAt` ships
when delegating an expression to another peer, so expression size —
``expression_size()`` — is a real cost the optimizer weighs.

Round trip: ``parse_expression(to_xml(e)) == e`` for every expression not
containing in-memory :class:`TreeExpr` literals with node identity (tree
literals round-trip by content).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Callable, Dict, List

from ..errors import ExpressionError
from ..xmlcore.model import Element, NodeId, element
from ..xmlcore.parser import parse as parse_xml
from ..xmlcore.serializer import serialize as serialize_xml
from ..xquery import Query
from .expressions import (
    ANY,
    DocDest,
    DocExpr,
    EvalAt,
    Expression,
    FragmentedDoc,
    Gather,
    GenericDoc,
    GenericService,
    NodesDest,
    PeerDest,
    QueryApply,
    QueryRef,
    Send,
    Seq,
    ServiceCallExpr,
    TreeExpr,
)

__all__ = [
    "to_xml",
    "from_xml",
    "expression_size",
    "expression_to_text",
    "expression_from_text",
    "expression_fingerprint",
]


def to_xml(expr: Expression) -> Element:
    """Serialize an expression into its XML-tree form."""
    if isinstance(expr, TreeExpr):
        node = element("x-tree", attrs={"home": expr.home})
        node.append(expr.tree.copy())
        return node
    if isinstance(expr, DocExpr):
        return element("x-doc", attrs={"name": expr.name, "home": expr.home})
    if isinstance(expr, GenericDoc):
        return element("x-doc", attrs={"name": expr.name, "home": ANY})
    if isinstance(expr, FragmentedDoc):
        return element("x-fragdoc", attrs={"name": expr.name})
    if isinstance(expr, Gather):
        node = element("x-gather")
        for part in expr.parts:
            node.append(to_xml(part))
        return node
    if isinstance(expr, QueryRef):
        node = element(
            "x-query",
            expr.query.source,
            attrs={
                "home": expr.home,
                "params": " ".join(expr.query.params),
                **({"name": expr.query.name} if expr.query.name else {}),
            },
        )
        return node
    if isinstance(expr, GenericService):
        return element("x-service", attrs={"name": expr.name, "home": ANY})
    if isinstance(expr, QueryApply):
        node = element("x-apply")
        node.append(to_xml(expr.query))
        args = element("x-args")
        for arg in expr.args:
            args.append(to_xml(arg))
        node.append(args)
        return node
    if isinstance(expr, ServiceCallExpr):
        node = element(
            "x-sc", attrs={"provider": expr.provider, "service": expr.service}
        )
        params = element("x-params")
        for param in expr.params:
            params.append(to_xml(param))
        node.append(params)
        for target in expr.forwards:
            node.append(element("x-forw", str(target)))
        return node
    if isinstance(expr, Send):
        node = element("x-send")
        node.append(_dest_to_xml(expr.dest))
        if expr.via:
            node.set_attr("via", " ".join(expr.via))
        node.append(to_xml(expr.payload))
        return node
    if isinstance(expr, EvalAt):
        node = element("x-eval", attrs={"peer": expr.peer})
        node.append(to_xml(expr.expr))
        return node
    if isinstance(expr, Seq):
        node = element("x-seq")
        for step in expr.steps:
            node.append(to_xml(step))
        return node
    raise ExpressionError(f"cannot serialize {type(expr).__name__}")


def _dest_to_xml(dest) -> Element:
    if isinstance(dest, PeerDest):
        return element("x-dest", attrs={"kind": "peer", "peer": dest.peer})
    if isinstance(dest, NodesDest):
        node = element("x-dest", attrs={"kind": "nodes"})
        for target in dest.nodes:
            node.append(element("x-node", str(target)))
        return node
    if isinstance(dest, DocDest):
        return element(
            "x-dest", attrs={"kind": "doc", "name": dest.name, "peer": dest.peer}
        )
    raise ExpressionError(f"cannot serialize destination {type(dest).__name__}")


def from_xml(node: Element) -> Expression:
    """Reconstruct an expression from its XML form."""
    tag = node.tag
    if tag == "x-tree":
        inner = node.element_children
        if len(inner) != 1:
            raise ExpressionError("x-tree must wrap exactly one tree")
        return TreeExpr(inner[0].copy(), node.attrs["home"])
    if tag == "x-doc":
        home = node.attrs["home"]
        if home == ANY:
            return GenericDoc(node.attrs["name"])
        return DocExpr(node.attrs["name"], home)
    if tag == "x-fragdoc":
        return FragmentedDoc(node.attrs["name"])
    if tag == "x-gather":
        return Gather(tuple(from_xml(c) for c in node.element_children))
    if tag == "x-query":
        params = tuple(p for p in node.attrs.get("params", "").split() if p)
        query = Query(
            node.string_value(), params=params, name=node.attrs.get("name")
        )
        return QueryRef(query, node.attrs["home"])
    if tag == "x-service":
        return GenericService(node.attrs["name"])
    if tag == "x-apply":
        children = node.element_children
        query = from_xml(children[0])
        if not isinstance(query, (QueryRef, GenericService)):
            raise ExpressionError("x-apply head must be a query or service ref")
        args_node = node.child_by_tag("x-args")
        args = tuple(from_xml(c) for c in args_node.element_children) if args_node else ()
        return QueryApply(query, args)
    if tag == "x-sc":
        params_node = node.child_by_tag("x-params")
        params = (
            tuple(from_xml(c) for c in params_node.element_children)
            if params_node
            else ()
        )
        forwards = tuple(
            NodeId.parse(f.string_value().strip())
            for f in node.children_by_tag("x-forw")
        )
        return ServiceCallExpr(
            node.attrs["provider"], node.attrs["service"], params, forwards
        )
    if tag == "x-send":
        dest_node = node.child_by_tag("x-dest")
        if dest_node is None:
            raise ExpressionError("x-send missing destination")
        payload_nodes = [
            c for c in node.element_children if c.tag != "x-dest"
        ]
        if len(payload_nodes) != 1:
            raise ExpressionError("x-send must have exactly one payload")
        via = tuple(node.attrs.get("via", "").split())
        return Send(_dest_from_xml(dest_node), from_xml(payload_nodes[0]), via)
    if tag == "x-eval":
        inner = node.element_children
        if len(inner) != 1:
            raise ExpressionError("x-eval must wrap exactly one expression")
        return EvalAt(node.attrs["peer"], from_xml(inner[0]))
    if tag == "x-seq":
        return Seq(tuple(from_xml(c) for c in node.element_children))
    raise ExpressionError(f"unknown expression element <{tag}>")


def _dest_from_xml(node: Element):
    kind = node.attrs.get("kind")
    if kind == "peer":
        return PeerDest(node.attrs["peer"])
    if kind == "nodes":
        return NodesDest(
            tuple(
                NodeId.parse(c.string_value().strip())
                for c in node.children_by_tag("x-node")
            )
        )
    if kind == "doc":
        return DocDest(node.attrs["name"], node.attrs["peer"])
    raise ExpressionError(f"unknown destination kind {kind!r}")


def expression_to_text(expr: Expression) -> str:
    """Wire form of an expression (what :class:`EvalAt` actually ships)."""
    return serialize_xml(to_xml(expr))


def expression_from_text(text: str) -> Expression:
    return from_xml(parse_xml(text))


def expression_size(expr: Expression) -> int:
    """Bytes of the serialized expression — the code-shipping cost."""
    return len(expression_to_text(expr).encode("utf-8"))


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------

def expression_fingerprint(expr: Expression) -> str:
    """Digest of the expression's XML form, without building or copying it.

    Two expressions fingerprint equal iff their :func:`to_xml` serializations
    are structurally equal — the canonical identity the plan cache keys on.
    Unlike ``expression_to_text`` this never copies tree literals: it feeds
    the same constructor/attribute tokens ``to_xml`` would emit straight
    into a hash, and folds in the (cached) content fingerprint of each
    :class:`TreeExpr` subtree.  Cost is one walk of the expression, O(1)
    per already-fingerprinted tree literal.
    """
    digest = blake2b(digest_size=12)
    _fingerprint_into(expr, digest.update)
    return digest.hexdigest()


def _fingerprint_into(expr: Expression, feed: Callable[[bytes], None]) -> None:
    def token(*parts: str) -> None:
        for part in parts:
            feed(part.encode("utf-8"))
            feed(b"\x00")

    if isinstance(expr, TreeExpr):
        token("x-tree", expr.home, expr.tree.content_fingerprint())
    elif isinstance(expr, DocExpr):
        token("x-doc", expr.name, expr.home)
    elif isinstance(expr, GenericDoc):
        token("x-doc", expr.name, ANY)
    elif isinstance(expr, FragmentedDoc):
        token("x-fragdoc", expr.name)
    elif isinstance(expr, Gather):
        token("x-gather", str(len(expr.parts)))
        for part in expr.parts:
            _fingerprint_into(part, feed)
    elif isinstance(expr, QueryRef):
        token(
            "x-query",
            expr.home,
            " ".join(expr.query.params),
            expr.query.name or "",
            expr.query.source,
        )
    elif isinstance(expr, GenericService):
        token("x-service", expr.name, ANY)
    elif isinstance(expr, QueryApply):
        token("x-apply")
        _fingerprint_into(expr.query, feed)
        token("x-args", str(len(expr.args)))
        for arg in expr.args:
            _fingerprint_into(arg, feed)
    elif isinstance(expr, ServiceCallExpr):
        token("x-sc", expr.provider, expr.service, str(len(expr.params)))
        for param in expr.params:
            _fingerprint_into(param, feed)
        for target in expr.forwards:
            token("x-forw", str(target))
    elif isinstance(expr, Send):
        token("x-send", " ".join(expr.via))
        _fingerprint_dest(expr.dest, token)
        _fingerprint_into(expr.payload, feed)
    elif isinstance(expr, EvalAt):
        token("x-eval", expr.peer)
        _fingerprint_into(expr.expr, feed)
    elif isinstance(expr, Seq):
        token("x-seq", str(len(expr.steps)))
        for step in expr.steps:
            _fingerprint_into(step, feed)
    else:
        raise ExpressionError(f"cannot fingerprint {type(expr).__name__}")


def _fingerprint_dest(dest, token) -> None:
    if isinstance(dest, PeerDest):
        token("x-dest", "peer", dest.peer)
    elif isinstance(dest, NodesDest):
        token("x-dest", "nodes", *[str(n) for n in dest.nodes])
    elif isinstance(dest, DocDest):
        token("x-dest", "doc", dest.name, dest.peer)
    else:
        raise ExpressionError(
            f"cannot fingerprint destination {type(dest).__name__}"
        )
