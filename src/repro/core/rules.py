"""Equivalence rules (10)–(16) of the paper, as expression rewrites.

Each rule is a :class:`RewriteRule` producing zero or more *alternative
plans* for a given plan (an expression plus the peer evaluating it).  The
definitional evaluator runs any of them; the claim — verified by
:mod:`repro.core.verify` and the property tests — is that all
alternatives leave Σ in the same state and produce the same value.

Paper-to-class map:

====  ==============================  =========================================
(10)  :class:`QueryDelegation`        ship query + args to another peer,
                                      evaluate there, ship the result back
(11)  :class:`PushSelection`          decompose q = q1(σ(q2)) and evaluate the
                                      selection where the data lives
                                      (Example 1: *pushing selections*)
(12)  :class:`Reroute`                add / remove an intermediary stop on a
                                      data transfer ("not always left-to-right")
(13)  :class:`TransferReuse`          materialize a twice-used remote tree as a
                                      local document; pays lost parallelism
(14)  :class:`DelegateExpression`     evaluate a whole expression tree at a
                                      different coordinator peer
(15)  :class:`RelocateCall`           move an sc evaluation site; results go
                                      straight to the forward list anyway
(16)  :class:`PushQueryOverCall`      evaluate q over a call's results at the
                                      *provider*, composing q with the
                                      service's implementing query q1
====  ==============================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..dist.pruning import fragment_can_match, selection_bounds
from ..errors import DecompositionError, RewriteError
from ..peers.service import DeclarativeService
from ..peers.system import AXMLSystem
from ..xquery import Query
from ..xquery.decompose import push_selection
from .expressions import (
    ANY,
    DocDest,
    DocExpr,
    EvalAt,
    Expression,
    FragmentedDoc,
    Gather,
    GenericDoc,
    NodesDest,
    PeerDest,
    QueryApply,
    QueryRef,
    Send,
    Seq,
    ServiceCallExpr,
    TreeExpr,
    transform,
    walk,
)

__all__ = [
    "Plan",
    "Rewrite",
    "RewriteRule",
    "QueryDelegation",
    "PushSelection",
    "Reroute",
    "TransferReuse",
    "DelegateExpression",
    "RelocateCall",
    "PushQueryOverCall",
    "FragmentPushSelection",
    "FragmentPrune",
    "DEFAULT_RULES",
    "subexpression_contexts",
]


@dataclass(frozen=True)
class Plan:
    """An expression plus its evaluation site: ``eval@site(expr)``."""

    expr: Expression
    site: str

    def describe(self) -> str:
        return f"eval@{self.site}({self.expr.describe()})"


@dataclass(frozen=True)
class Rewrite:
    """One alternative produced by a rule."""

    plan: Plan
    rule: str
    note: str = ""

    def describe(self) -> str:
        suffix = f" [{self.note}]" if self.note else ""
        return f"{self.rule}{suffix}: {self.plan.describe()}"


ContextFn = Callable[[Expression], Expression]


def subexpression_contexts(
    expr: Expression,
) -> Iterator[Tuple[Expression, ContextFn]]:
    """Yield every sub-expression with a function rebuilding the whole.

    ``rebuild(replacement)`` returns ``expr`` with that occurrence (by
    position) swapped for ``replacement`` — the generic plumbing all
    rules use to rewrite deep inside a plan.
    """

    def recurse(
        node: Expression, rebuild: ContextFn
    ) -> Iterator[Tuple[Expression, ContextFn]]:
        yield node, rebuild
        children = node.children()
        for index, child in enumerate(children):
            def child_rebuild(
                replacement: Expression,
                _node=node,
                _index=index,
            ) -> Expression:
                kids = list(_node.children())
                kids[_index] = replacement
                return _node.with_children(tuple(kids))

            yield from recurse(
                child,
                lambda r, f=child_rebuild, g=rebuild: g(f(r)),
            )

    yield from recurse(expr, lambda replacement: replacement)


class RewriteRule:
    """Base class: enumerate alternative plans for one plan."""

    name = "rule"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        raise NotImplementedError

    def _peers(self, system: AXMLSystem) -> List[str]:
        return sorted(system.peers)


# ---------------------------------------------------------------------------
# Rule (10): query delegation
# ---------------------------------------------------------------------------

class QueryDelegation(RewriteRule):
    """``eval@p1(q(t)) ≡ send_{p2→p1}((send_{p1→p2} q)(send_{p1→p2} t))``.

    In expression form: wrap a :class:`QueryApply` in ``EvalAt(p2, ·)``.
    Definitions (5)/(7) then perform exactly the three sends of the rule.
    Candidate delegates: the home peers of the arguments (pushing the
    query to the data — the useful direction) and, when ``all_peers`` is
    set, every other peer (the optimizer prunes by cost).
    """

    name = "query-delegation(10)"

    def __init__(self, all_peers: bool = False) -> None:
        self.all_peers = all_peers

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, QueryApply):
                continue
            candidates = set()
            for arg in node.args:
                if isinstance(arg, (DocExpr, TreeExpr)):
                    candidates.add(arg.home)
            if self.all_peers:
                candidates.update(self._peers(system))
            candidates.discard(plan.site)
            for peer in sorted(candidates):
                rewrites.append(
                    Rewrite(
                        Plan(rebuild(EvalAt(peer, node)), plan.site),
                        self.name,
                        f"delegate to {peer}",
                    )
                )
        return rewrites


# ---------------------------------------------------------------------------
# Rule (11) + Example 1: pushing selections
# ---------------------------------------------------------------------------

class PushSelection(RewriteRule):
    """Decompose ``q ≡ q1(σ(q2))`` and evaluate σ(q2) at the data's home.

    Matches ``QueryApply(q, (d@p2,))`` whose query splits via
    :func:`repro.xquery.decompose.push_selection`; produces::

        QueryApply(q1, (EvalAt(p2, QueryApply(σq2, (d@p2,))),))

    so only the selected subset travels (the paper's Example 1 chain of
    rules (11) then (10)).
    """

    name = "push-selection(11)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, QueryApply):
                continue
            if len(node.args) != 1 or not isinstance(node.args[0], (DocExpr, GenericDoc)):
                continue
            if not isinstance(node.query, QueryRef):
                continue
            arg = node.args[0]
            home = arg.home if isinstance(arg, DocExpr) else None
            try:
                decomposition = push_selection(node.query.query)
            except DecompositionError:
                continue
            inner_ref = QueryRef(decomposition.inner, plan.site)
            outer_ref = QueryRef(decomposition.outer, plan.site)
            inner_apply = QueryApply(inner_ref, (arg,))
            if home is not None and home != plan.site:
                inner_expr: Expression = EvalAt(home, inner_apply)
                note = f"selection pushed to {home}"
            else:
                inner_expr = inner_apply
                note = "selection split locally"
            rewritten = QueryApply(outer_ref, (inner_expr,))
            rewrites.append(
                Rewrite(Plan(rebuild(rewritten), plan.site), self.name, note)
            )
        return rewrites


# ---------------------------------------------------------------------------
# Rule (12): transfer rerouting
# ---------------------------------------------------------------------------

class Reroute(RewriteRule):
    """``send_{p1→p2}(eval@p0(send(p1, t@p0))) ≡ send_{p0→p2}(t@p0)``.

    Right-to-left: a transfer may stop at an intermediary; left-to-right:
    the stop can be elided.  We enumerate both directions on every
    :class:`Send`: adding each other peer as a one-hop relay, and
    stripping existing relays.  The paper stresses the rule is *not*
    always profitable left-to-right — the cost model decides.
    """

    name = "reroute(12)"

    def __init__(self, max_relays: int = 1) -> None:
        self.max_relays = max_relays

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, Send):
                continue
            dest_peer = _dest_peer(node.dest)
            if node.via:
                rewrites.append(
                    Rewrite(
                        Plan(rebuild(Send(node.dest, node.payload, ())), plan.site),
                        self.name,
                        "drop intermediary stops",
                    )
                )
            if len(node.via) < self.max_relays:
                for peer in self._peers(system):
                    if peer in (plan.site, dest_peer) or peer in node.via:
                        continue
                    rewrites.append(
                        Rewrite(
                            Plan(
                                rebuild(
                                    Send(node.dest, node.payload, node.via + (peer,))
                                ),
                                plan.site,
                            ),
                            self.name,
                            f"stop at {peer}",
                        )
                    )
        return rewrites


def _dest_peer(dest) -> Optional[str]:
    if isinstance(dest, PeerDest):
        return dest.peer
    if isinstance(dest, DocDest):
        return dest.peer
    if isinstance(dest, NodesDest) and dest.nodes:
        return dest.nodes[0].peer
    return None


# ---------------------------------------------------------------------------
# Rule (13): transfer reuse
# ---------------------------------------------------------------------------

class TransferReuse(RewriteRule):
    """Materialize a multiply-transferred remote tree as a local document.

    ``e1(e2(send_{p1→p}(t)), e3(send_{p1→p}(t)))`` becomes: first
    materialize ``t`` as ``d@p``, then evaluate the expression with both
    occurrences reading ``d@p``.  The :class:`Seq` makes the lost
    parallelism explicit: the body waits for the materialization, which
    "may be worth it if t is large" (paper's own caveat).
    """

    name = "transfer-reuse(13)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        occurrences: dict = {}
        for node in walk(plan.expr):
            if isinstance(node, DocExpr) and node.home != plan.site:
                occurrences[node] = occurrences.get(node, 0) + 1
        rewrites: List[Rewrite] = []
        for doc_expr, count in occurrences.items():
            if count < 2:
                continue
            # deterministic name: the same logical rewrite must produce the
            # same plan every time it is enumerated, or plan fingerprints
            # (and any caching keyed on them) would never match across
            # searches.  The digest keeps it injective over (name, home) —
            # a plain join would alias e.g. ("a-b","c") with ("a","b-c").
            pair = blake2b(
                f"{doc_expr.name}\x00{doc_expr.home}".encode("utf-8"),
                digest_size=6,
            ).hexdigest()
            local_name = f"tmp-reuse-{doc_expr.name}-{pair}"
            local = DocExpr(local_name, plan.site)

            def substitute(node: Expression) -> Optional[Expression]:
                if node == doc_expr:
                    return local
                return None

            body = transform(plan.expr, substitute)
            materialize = EvalAt(
                doc_expr.home,
                Send(DocDest(local_name, plan.site), doc_expr),
            )
            rewrites.append(
                Rewrite(
                    Plan(Seq((materialize, body)), plan.site),
                    self.name,
                    f"materialize {doc_expr.describe()} as {local_name}@{plan.site}",
                )
            )
        return rewrites


# ---------------------------------------------------------------------------
# Rule (14): whole-expression delegation
# ---------------------------------------------------------------------------

class DelegateExpression(RewriteRule):
    """``eval@p(e) ≡ eval@p1(send(p, eval@p(e)))`` — move the coordinator.

    Wraps the *top-level* expression in ``EvalAt(p1, ·)`` for each other
    peer: the expression tree ships to p1 (mutant-query-plan style), p1
    orchestrates, and the value returns to p.  Only applied at the top to
    keep the search space linear; inner delegation emerges from rule (10).
    """

    name = "delegate-expression(14)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        if isinstance(plan.expr, EvalAt):
            return []  # already delegated; avoid towers of EvalAt
        rewrites = []
        for peer in self._peers(system):
            if peer == plan.site:
                continue
            rewrites.append(
                Rewrite(
                    Plan(EvalAt(peer, plan.expr), plan.site),
                    self.name,
                    f"coordinate at {peer}",
                )
            )
        return rewrites


# ---------------------------------------------------------------------------
# Rule (15): relocating service calls
# ---------------------------------------------------------------------------

class RelocateCall(RewriteRule):
    """``eval@p(sc(...)) ≡ eval@p2(send_{p→p2}(sc(...)))``.

    Sound for calls with an explicit forward list: responses go straight
    to the targets, so "there is no need to ship results back".  The
    natural winner is relocating to the *provider* — parameters then ship
    once instead of twice.
    """

    name = "relocate-call(15)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, ServiceCallExpr) or not node.forwards:
                continue
            if any(not isinstance(p, TreeExpr) for p in node.params):
                continue  # params must be shippable values
            candidates = set(self._peers(system))
            if node.provider != ANY:
                candidates.add(node.provider)
            candidates.discard(plan.site)
            for peer in sorted(candidates):
                relocated_params = tuple(
                    TreeExpr(p.tree, peer) if isinstance(p, TreeExpr) and p.home == plan.site else p
                    for p in node.params
                )
                # Relocation ships the whole sc tree (params included) to
                # the new site; EvalAt's expression shipping models that.
                relocated = ServiceCallExpr(
                    node.provider, node.service, relocated_params, node.forwards
                )
                rewrites.append(
                    Rewrite(
                        Plan(rebuild(EvalAt(peer, relocated)), plan.site),
                        self.name,
                        f"evaluate sc at {peer}",
                    )
                )
        return rewrites


# ---------------------------------------------------------------------------
# Rule (16): pushing queries over service calls
# ---------------------------------------------------------------------------

class PushQueryOverCall(RewriteRule):
    """``q(sc(p1, s1, params)) ≡ eval@p1(q(q1(params)))`` with results
    forwarded from p1 — compose the consumer query with the service's
    implementing query at the provider.

    Requires ``s1@p1`` declarative (its query ``q1`` is visible); that
    visibility "enabl[ing] many optimizations" is exactly why the paper
    singles declarative services out.
    """

    name = "push-query-over-call(16)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, QueryApply):
                continue
            if len(node.args) != 1 or not isinstance(node.args[0], ServiceCallExpr):
                continue
            if not isinstance(node.query, QueryRef):
                continue
            call = node.args[0]
            if call.provider == ANY:
                continue
            provider = system.peer(call.provider)
            if not provider.has_service(call.service):
                continue
            service = provider.service(call.service)
            if not isinstance(service, DeclarativeService):
                continue
            q1_ref = QueryRef(service.query, call.provider)
            inner_apply = QueryApply(q1_ref, call.params)
            composed = QueryApply(node.query, (inner_apply,))
            if call.forwards:
                pushed: Expression = EvalAt(
                    call.provider, Send(NodesDest(call.forwards), composed)
                )
            else:
                pushed = EvalAt(call.provider, composed)
            rewrites.append(
                Rewrite(
                    Plan(rebuild(pushed), plan.site),
                    self.name,
                    f"compose with {service.name}@{call.provider}",
                )
            )
        return rewrites


# ---------------------------------------------------------------------------
# Fragment-aware rewrites (repro.dist): scatter below the union, prune
# ---------------------------------------------------------------------------

class _FragmentRuleBase(RewriteRule):
    """Shared matching for the two fragment rewrites.

    Both fire on ``QueryApply(q, (d@dist,))`` where ``q`` splits via
    :func:`~repro.xquery.decompose.push_selection` — rule (11) applied
    over a fragment union instead of a single remote document.
    """

    def _matches(self, plan: Plan, system: AXMLSystem):
        catalog = system.fragments
        if not len(catalog):
            return
        for node, rebuild in subexpression_contexts(plan.expr):
            if not isinstance(node, QueryApply):
                continue
            if len(node.args) != 1 or not isinstance(node.args[0], FragmentedDoc):
                continue
            if not isinstance(node.query, QueryRef):
                continue
            if not catalog.is_fragmented(node.args[0].name):
                continue
            try:
                decomposition = push_selection(node.query.query)
            except DecompositionError:
                continue
            yield node, rebuild, catalog.info(node.args[0].name), decomposition

    def _scatter(self, plan: Plan, node: QueryApply, decomposition, fragments):
        """``q1(gather(eval@home_i(σq2(frag_i)), ...))`` over the fragments.

        The inner query is homed at each fragment's peer: the shipped
        ``EvalAt`` expression already carries the query text (mutant
        query plans — the code travels with the plan), so homing it
        remotely would only add a redundant second query transfer.
        Replicated fragments are read through their generic class, not
        pinned to the primary — the pick policy (e.g. queue-depth
        admission under the serving engine) chooses the copy at
        evaluation time, for optimized plans exactly as for reassembly.
        """
        outer_ref = QueryRef(decomposition.outer, plan.site)
        parts = []
        for fragment in fragments:
            if fragment.generic is not None:
                source: Expression = GenericDoc(fragment.generic)
            else:
                source = DocExpr(fragment.name, fragment.home)
            inner_apply = QueryApply(
                QueryRef(decomposition.inner, fragment.home), (source,)
            )
            if fragment.home != plan.site:
                parts.append(EvalAt(fragment.home, inner_apply))
            else:
                parts.append(inner_apply)
        return QueryApply(outer_ref, (Gather(tuple(parts)),))


class FragmentPushSelection(_FragmentRuleBase):
    """Push a selection below the fragment union (scatter-gather).

    ``q(d@dist) ≡ q1(gather(eval@p_i(σq2(f_i@p_i)), ...))`` — instead of
    reassembling the whole document at the evaluation site, each
    fragment-holding peer runs the selection locally and only the
    matching subset travels; the gather unions the per-fragment
    envelopes in ordinal order, so answers stay byte-identical.
    """

    name = "fragment-scatter(11f)"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild, info, decomposition in self._matches(plan, system):
            scattered = self._scatter(plan, node, decomposition, info.fragments)
            rewrites.append(
                Rewrite(
                    Plan(rebuild(scattered), plan.site),
                    self.name,
                    f"scatter σ to {len(info.fragments)} fragments of {info.doc}",
                )
            )
        return rewrites


class FragmentPrune(_FragmentRuleBase):
    """Contact only fragments whose catalog metadata can match.

    Combines the scatter with static pruning: a fragment whose recorded
    ``(min, max)`` range for the selection's key cannot satisfy the
    predicate is dropped from the gather entirely — no message, no
    compute, provably no lost answers (the ranges are invariants the
    :class:`~repro.dist.fragmenter.Fragmenter` computed at split time).
    Only emitted when it actually prunes something; the plain scatter is
    :class:`FragmentPushSelection`'s job.
    """

    name = "fragment-prune"

    def apply(self, plan: Plan, system: AXMLSystem) -> List[Rewrite]:
        rewrites: List[Rewrite] = []
        for node, rebuild, info, decomposition in self._matches(plan, system):
            bounds = selection_bounds(node.query.query)
            if bounds is None:
                continue
            kept = tuple(
                fragment
                for fragment in info.fragments
                if fragment_can_match(fragment, *bounds)
            )
            if len(kept) == len(info.fragments):
                continue
            pruned = self._scatter(plan, node, decomposition, kept)
            rewrites.append(
                Rewrite(
                    Plan(rebuild(pruned), plan.site),
                    self.name,
                    f"contact {len(kept)}/{len(info.fragments)} "
                    f"fragments of {info.doc}",
                )
            )
        return rewrites


#: The rule set the optimizer uses by default (paper order, then the
#: fragment-aware extensions).
DEFAULT_RULES: Tuple[RewriteRule, ...] = (
    QueryDelegation(),
    PushSelection(),
    Reroute(),
    TransferReuse(),
    DelegateExpression(),
    RelocateCall(),
    PushQueryOverCall(),
    FragmentPushSelection(),
    FragmentPrune(),
)
