"""The paper's primary contribution: the algebra for AXML computations.

Contents: the expression language E (Section 3.1), the definitional
evaluator implementing eval definitions (1)–(9) (Section 3.2), the
equivalence rules (10)–(16) as rewrites plus a cost model and optimizer
(Section 3.3), and a machine-checked equivalence verifier.

Quick taste — Example 1 of the paper (pushing selections), end to end:

>>> from repro.core import (Plan, QueryApply, QueryRef, DocExpr,
...                         Optimizer, measure)
>>> from repro.peers import AXMLSystem
>>> from repro.xmlcore import parse
>>> from repro.xquery import Query
>>> system = AXMLSystem.with_peers(["client", "data"], bandwidth=20_000.0)
>>> _ = system.peer("data").install_document("cat", parse(
...     "<c>" + "".join(f"<i><p>{n}</p></i>" for n in range(50)) + "</c>"))
>>> q = Query("for $i in $d//i where $i/p > 47 return $i",
...           params=("d",), name="sel")
>>> plan = Plan(QueryApply(QueryRef(q, "client"), (DocExpr("cat", "data"),)),
...             "client")
>>> result = Optimizer(system).optimize(plan, depth=2)
>>> result.best_cost.bytes < result.original_cost.bytes
True
"""

from .cost import Cost, CostEstimator, Statistics, measure
from .costmodel import (
    AnalyticCostModel,
    CallableCostModel,
    CostModel,
    HybridCostModel,
    OracleCostModel,
    available_cost_models,
    make_cost_model,
    register_cost_model,
)
from .evaluator import EvalOutcome, ExpressionEvaluator
from .expressions import (
    ANY,
    DocDest,
    DocExpr,
    EvalAt,
    Expression,
    GenericDoc,
    GenericService,
    NodesDest,
    PeerDest,
    QueryApply,
    QueryRef,
    Send,
    Seq,
    ServiceCallExpr,
    TreeExpr,
    transform,
    walk,
)
from .optimizer import OptimizationResult, Optimizer
from .planspace import CacheStats, PlanCache, plan_fingerprint
from .strategies import (
    BeamSearchStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    OptimizerStrategy,
    SearchSpace,
    available_strategies,
    make_strategy,
    register_strategy,
)
from .rules import (
    DEFAULT_RULES,
    DelegateExpression,
    Plan,
    PushQueryOverCall,
    PushSelection,
    QueryDelegation,
    RelocateCall,
    Reroute,
    Rewrite,
    RewriteRule,
    TransferReuse,
)
from .serialize import (
    expression_fingerprint,
    expression_from_text,
    expression_size,
    expression_to_text,
    from_xml,
    to_xml,
)
from .verify import VerificationResult, check_equivalence, observable_state

__all__ = [
    # expressions
    "Expression", "TreeExpr", "DocExpr", "GenericDoc", "QueryRef",
    "GenericService", "QueryApply", "ServiceCallExpr", "Send", "EvalAt",
    "Seq", "PeerDest", "NodesDest", "DocDest", "ANY", "walk", "transform",
    # evaluation
    "ExpressionEvaluator", "EvalOutcome",
    # rules / plans
    "Plan", "Rewrite", "RewriteRule", "DEFAULT_RULES",
    "QueryDelegation", "PushSelection", "Reroute", "TransferReuse",
    "DelegateExpression", "RelocateCall", "PushQueryOverCall",
    # cost / optimizer
    "Cost", "Statistics", "CostEstimator", "measure",
    "Optimizer", "OptimizationResult",
    # cost models
    "CostModel", "OracleCostModel", "AnalyticCostModel", "HybridCostModel",
    "CallableCostModel", "register_cost_model", "available_cost_models",
    "make_cost_model",
    # plan-space memoization
    "PlanCache", "CacheStats", "plan_fingerprint",
    # strategies
    "OptimizerStrategy", "SearchSpace", "BeamSearchStrategy",
    "GreedyStrategy", "ExhaustiveStrategy", "register_strategy",
    "available_strategies", "make_strategy",
    # serialization
    "to_xml", "from_xml", "expression_to_text", "expression_from_text",
    "expression_size", "expression_fingerprint",
    # verification
    "check_equivalence", "VerificationResult", "observable_state",
]
