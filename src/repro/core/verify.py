"""Machine-checked equivalence of plans (Section 3.3's ``≡``).

The paper defines ``e1@p1 ≡ e2@p2`` as: for every system state Σ,
``eval@p1(e1)(Σ) = eval@p2(e2)(Σ)``.  Universal quantification over Σ is
checked here the empirical way — evaluate both plans on *clones* of one
or more concrete states and compare:

* the resulting values (forests, compared by unordered canonical form);
* the resulting Σ (document canonical forms per peer), with rewrite
  *artifacts* excluded: temporary documents and deployed helper services
  created by rules (8)/(13) carry reserved name prefixes (``tmp-``,
  ``recv-``, ``sent-``) and are not part of the observable state — a
  choice the paper makes implicitly when rule (13) invents document
  ``d@p``.

The property tests drive this over randomized states, which is as close
to "for any Σ" as an executable check gets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..peers.system import AXMLSystem
from ..xmlcore.canon import canonical_form
from .evaluator import EvalOutcome, ExpressionEvaluator
from .rules import Plan

__all__ = ["VerificationResult", "check_equivalence", "observable_state"]

#: Name prefixes marking rewrite artifacts, excluded from Σ comparison.
ARTIFACT_PREFIXES = ("tmp-", "recv-", "sent-")


@dataclass
class VerificationResult:
    """Outcome of one equivalence check, with a human-readable reason."""

    equivalent: bool
    reason: str = ""
    left_value: Optional[Tuple] = None
    right_value: Optional[Tuple] = None

    def __bool__(self) -> bool:
        return self.equivalent


def _is_artifact(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in ARTIFACT_PREFIXES)


def observable_state(system: AXMLSystem) -> Dict[str, Tuple]:
    """Σ restricted to non-artifact documents and services."""
    image: Dict[str, Tuple] = {}
    for peer_id in sorted(system.peers):
        peer = system.peers[peer_id]
        docs = tuple(
            sorted(
                (name, canonical_form(tree))
                for name, tree in peer.documents.items()
                if not _is_artifact(name)
            )
        )
        services = tuple(
            sorted(
                name for name in peer.services if not _is_artifact(name)
            )
        )
        image[peer_id] = (docs, services)
    return image


def _value_image(outcome: EvalOutcome) -> Tuple:
    forest = tuple(sorted(repr(canonical_form(item)) for item in outcome.items))
    query = outcome.query.source if outcome.query is not None else None
    return (forest, query)


def check_equivalence(
    left: Plan,
    right: Plan,
    system: AXMLSystem,
    pick_policy=None,
    compare_values: bool = True,
) -> VerificationResult:
    """Evaluate both plans on clones of ``system``; compare value and Σ."""
    left_system = system.clone()
    right_system = system.clone()
    try:
        left_outcome = ExpressionEvaluator(left_system, pick_policy).eval(
            left.expr, left.site
        )
    except Exception as exc:
        return VerificationResult(False, f"left plan failed: {exc}")
    try:
        right_outcome = ExpressionEvaluator(right_system, pick_policy).eval(
            right.expr, right.site
        )
    except Exception as exc:
        return VerificationResult(False, f"right plan failed: {exc}")

    left_value = _value_image(left_outcome)
    right_value = _value_image(right_outcome)
    if compare_values and left_value != right_value:
        return VerificationResult(
            False,
            "result values differ",
            left_value,
            right_value,
        )

    left_state = observable_state(left_system)
    right_state = observable_state(right_system)
    if left_state != right_state:
        differing = [
            peer
            for peer in left_state
            if left_state.get(peer) != right_state.get(peer)
        ]
        return VerificationResult(
            False, f"system state differs on peers {differing}"
        )
    return VerificationResult(True, "value and state match")
