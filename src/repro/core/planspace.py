"""Plan-space memoization: canonical fingerprints and a transposition table.

The optimizer's rewrite space (Section 3.3) is a graph, not a tree: the
same plan is reachable through many rule orders (apply rule A at one
subexpression then B at another, or B then A — same plan).  Searching it
as a tree re-costs and re-expands structurally identical plans
exponentially often; the classic fix from cost-based optimizers (and from
decision-diagram packages: unique canonical representatives plus an
operation cache) is to key every plan by a *canonical fingerprint* and
memoize per key.

* :func:`plan_fingerprint` — a structural digest of a plan derived from
  the XML serialization of :mod:`repro.core.serialize` (never from object
  identity), interned so equal plans share one key object;
* :class:`PlanCache` — the transposition table: plan cost and rule
  expansions per fingerprint, plus the :class:`~repro.core.cost.CostEstimator`'s
  subtree/doc-size/compiled-query memos, with hit/miss/dedup counters;
* :class:`CacheStats` — the counter block, snapshot-diffable so each
  search can report exactly its own share of a shared cache's traffic.

One :class:`PlanCache` may be shared across strategies and across
searches (the :class:`~repro.session.Session` and the
:class:`~repro.workloads.harness.DifferentialHarness` both do), under one
contract: **the cached values are only valid while Σ's observable
statistics are stable**.  Costs are deterministic functions of (plan, Σ);
mutate the system and the table must be :meth:`~PlanCache.clear`-ed.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .expressions import DocExpr, FragmentedDoc, GenericDoc, walk
from .rules import Plan, Rewrite
from .serialize import expression_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .cost import Cost

__all__ = [
    "plan_fingerprint",
    "doc_epoch_signature",
    "CacheStats",
    "PlanCache",
]

#: Sentinel cached for plans the cost function cannot evaluate, so a
#: failing candidate is not re-measured on every re-reach.
UNEVALUABLE = object()


def plan_fingerprint(plan: Plan) -> str:
    """Canonical, interned key for a plan: site + structural expression digest.

    Two plans share a key iff they have the same evaluation site and
    structurally equal expressions (tree literals compared by content).
    The string is interned so every holder of an equal plan carries the
    *same* key object and dict lookups degrade to pointer comparisons.
    """
    return sys.intern(f"{plan.site}|{expression_fingerprint(plan.expr)}")


def doc_epoch_signature(system, expr) -> str:
    """Epoch salt for the documents an expression reads, ``""`` if none.

    Document-reference expressions (:class:`DocExpr`, :class:`GenericDoc`,
    :class:`FragmentedDoc`) fingerprint by *name* only, so a mutation
    (see :mod:`repro.writes`) would be invisible to :func:`plan_fingerprint`.
    This signature makes it visible: every referenced name with a
    non-zero epoch contributes ``name:epoch``, sorted and joined.  While
    nothing has ever been written (``system.doc_epochs`` empty) the
    signature is ``""`` — callers skip the salt entirely and every key
    stays byte-identical to the read-only regime.  Tree literals need no
    salting: their content fingerprint already changes under mutation.
    """
    epochs = getattr(system, "doc_epochs", None)
    if not epochs:
        return ""
    touched = set()
    for node in walk(expr):
        if isinstance(node, (DocExpr, GenericDoc, FragmentedDoc)):
            epoch = epochs.get(node.name)
            if epoch:
                touched.add(f"{node.name}:{epoch}")
    return ",".join(sorted(touched))


@dataclass
class CacheStats:
    """Hit/miss/dedup counters for one cache (or one search's delta).

    ``plans_deduped`` counts candidate plans a strategy skipped because
    their fingerprint was already processed this search; ``cost_hits``
    are cost lookups answered from the table (each one is a cost-function
    invocation saved); ``cost_misses`` are actual cost-function calls.
    """

    cost_hits: int = 0
    cost_misses: int = 0
    expand_hits: int = 0
    expand_misses: int = 0
    plans_deduped: int = 0
    estimator_hits: int = 0
    estimator_misses: int = 0

    @property
    def cost_calls_saved(self) -> int:
        return self.cost_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of cost lookups answered without invoking the cost fn."""
        total = self.cost_hits + self.cost_misses
        return self.cost_hits / total if total else 0.0

    def copy(self) -> "CacheStats":
        return CacheStats(**self.as_dict())

    def delta_since(self, baseline: "CacheStats") -> "CacheStats":
        """Counter-wise difference (per-search share of a shared cache)."""
        return CacheStats(
            **{
                f.name: getattr(self, f.name) - getattr(baseline, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def describe(self) -> str:
        return (
            f"cache: {self.cost_hits} cost hits / {self.cost_misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.plans_deduped} plans "
            f"deduped, {self.expand_hits} expansions reused"
        )


class PlanCache:
    """Transposition table over canonical plan fingerprints.

    Stores, per plan key: the plan's cost (or an "unevaluable" verdict)
    and the full list of rule rewrites; and, for the static
    :class:`~repro.core.cost.CostEstimator`, per-(subexpression, site)
    cost deltas, per-(document, peer) sizes, and compiled logical plans
    per query source.  ``stats`` accumulates over the cache's lifetime;
    callers wanting per-search numbers snapshot and diff via
    :meth:`CacheStats.delta_since`.
    """

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._costs: Dict[str, object] = {}
        self._expansions: Dict[str, Tuple[Rewrite, ...]] = {}
        #: (statistics token, expression fingerprint, site) ->
        #: (value size, bytes, msgs, time); the token keeps estimators
        #: with different Statistics from replaying each other's deltas
        self.subtree_costs: Dict[Tuple, Tuple[int, int, int, float]] = {}
        #: (document name, home peer) -> serialized bytes; written
        #: documents gain an epoch component (name, home, epoch) so a
        #: mutation orphans the stale size instead of serving it
        self.doc_sizes: Dict[Tuple, int] = {}
        #: query source -> compiled logical plan (or None when uncompilable)
        self.compiled_queries: Dict[str, object] = {}
        #: (document name, home peer[, epoch]) -> tuple of embedded
        #: service-call profiles (the estimator's activation model);
        #: epoch-keyed like doc_sizes so writes orphan stale profiles
        self.doc_profiles: Dict[Tuple, Tuple] = {}
        #: (provider, service, params digest[, epochs]) -> sampled
        #: invocation (work units, per-item result bytes, result items);
        #: one deterministic sample per call site, amortized across every
        #: candidate plan
        self.service_samples: Dict[Tuple, Tuple] = {}
        #: doc key -> materialized *activated* document value (or False
        #: when the document cannot be materialized statically)
        self.doc_values: Dict[Tuple, object] = {}
        #: (query source, argument value keys) -> (result bytes, work
        #: units); one deterministic apply sample per distinct input
        self.apply_samples: Dict[Tuple, Tuple[int, int]] = {}

    # -- transposition table ------------------------------------------------
    def lookup_cost(self, key: str) -> Tuple[bool, Optional["Cost"]]:
        """``(hit, cost)``; a hit with ``None`` means "known unevaluable"."""
        entry = self._costs.get(key, _MISS)
        if entry is _MISS:
            return False, None
        return True, None if entry is UNEVALUABLE else entry

    def store_cost(self, key: str, cost: Optional["Cost"]) -> None:
        self._costs[key] = UNEVALUABLE if cost is None else cost

    def lookup_expansions(self, key: str) -> Optional[List[Rewrite]]:
        cached = self._expansions.get(key)
        return None if cached is None else list(cached)

    def store_expansions(self, key: str, rewrites: List[Rewrite]) -> None:
        self._expansions[key] = tuple(rewrites)

    # -- bookkeeping --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._costs)

    @property
    def distinct_plans(self) -> int:
        """Distinct plan fingerprints with a cached cost."""
        return len(self._costs)

    def clear(self) -> None:
        """Forget everything (call after mutating Σ); counters survive."""
        self._costs.clear()
        self._expansions.clear()
        self.subtree_costs.clear()
        self.doc_sizes.clear()
        self.compiled_queries.clear()
        self.doc_profiles.clear()
        self.service_samples.clear()
        self.doc_values.clear()
        self.apply_samples.clear()

    def describe(self) -> str:
        return (
            f"{self.distinct_plans} plans cached, "
            f"{len(self._expansions)} expansions, "
            f"{len(self.subtree_costs)} subtree estimates; "
            + self.stats.describe()
        )


_MISS = object()
