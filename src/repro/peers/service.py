"""Web services hosted by peers.

The paper models a service ``s@p`` as a WSDL request-response operation
with signature ``(τ_in, τ_out)`` (Section 2.1).  All services are treated
as *continuous*: once activated they may keep producing response trees.

Two implementations:

* :class:`DeclarativeService` — implemented by a declarative XQuery
  statement, *visible to other peers*.  This visibility is what enables
  the paper's optimizations (pushing queries over calls, rule (16), needs
  the implementing query ``q1``).
* :class:`NativeService` — an opaque Python callable; stands in for
  external WSDL services whose implementation cannot be inspected, and is
  deliberately *not* rewritable by the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from ..errors import ServiceCallError
from ..xmlcore.model import Element, Node
from ..xmlcore.schema import Signature
from ..xquery import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .peer import Peer

__all__ = ["Service", "DeclarativeService", "NativeService"]


class Service:
    """Base class: a named operation provided by one peer."""

    def __init__(
        self,
        name: str,
        signature: Optional[Signature] = None,
        continuous: bool = True,
    ) -> None:
        self.name = name
        self.signature = signature or Signature()
        #: Per the paper, "we consider all services are continuous"; a
        #: non-continuous service simply never re-fires.
        self.continuous = continuous
        self.provider: Optional["Peer"] = None
        self.invocations = 0

    @property
    def arity(self) -> int:
        return self.signature.arity

    def bind(self, provider: "Peer") -> "Service":
        self.provider = provider
        return self

    # -- interface -------------------------------------------------------------
    def invoke(self, params: Sequence[Element], peer: "Peer") -> List[Element]:
        """Produce the response forest for one activation."""
        raise NotImplementedError

    def work_units(self, params: Sequence[Element]) -> int:
        """Abstract compute cost of one invocation (tree nodes touched)."""
        from ..xmlcore.model import tree_size

        return sum(tree_size(p) for p in params) + 1

    @property
    def is_declarative(self) -> bool:
        return False

    def describe(self) -> str:
        peer = self.provider.peer_id if self.provider else "?"
        return f"{self.name}@{peer}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class DeclarativeService(Service):
    """A service implemented by a visible, parameterized XQuery.

    The query's positional parameters receive the call's ``param_i``
    subtrees in order.  ``doc()`` inside the query resolves against the
    *providing* peer's documents — services close over their host's data,
    which is what makes delegating them to other peers a genuine rewrite
    (the optimizer must ship the referenced documents too, or keep the
    service home; see :mod:`repro.core.rules`).
    """

    def __init__(
        self,
        name: str,
        query: Query,
        signature: Optional[Signature] = None,
        continuous: bool = True,
    ) -> None:
        super().__init__(name, signature, continuous)
        self.query = query

    @property
    def is_declarative(self) -> bool:
        return True

    @property
    def arity(self) -> int:
        """Untyped declarative services take their arity from the query."""
        if self.signature.schema is None and not self.signature.inputs:
            return len(self.query.params)
        return self.signature.arity

    def invoke(self, params: Sequence[Element], peer: "Peer") -> List[Element]:
        if self.signature.schema is not None:
            self.signature.check_inputs(list(params))
        self.invocations += 1
        bound = self.query.bind_resolver(peer.doc_resolver)
        result = bound.run(*[[p] for p in params])
        trees: List[Element] = []
        for item in result:
            if isinstance(item, Element):
                trees.append(item)
            else:
                # atomic results are wrapped so the response is a forest
                # of trees, as the model requires
                from ..xquery.runtime import string_value

                wrapper = Element("value")
                from ..xmlcore.model import Text

                wrapper.append(Text(string_value(item)))
                trees.append(wrapper)
        if self.signature.schema is not None:
            for tree in trees:
                self.signature.check_output(tree)
        return trees

    def work_units(self, params: Sequence[Element]) -> int:
        from ..xmlcore.model import tree_size

        base = sum(tree_size(p) for p in params)
        # navigation over host documents referenced via doc()
        host_docs = 0
        if self.provider is not None:
            for referenced in _doc_references(self.query):
                document = self.provider.documents.get(referenced)
                if document is not None:
                    host_docs += tree_size(document)
        return base + host_docs + 1


def _doc_references(query: Query) -> List[str]:
    """Names passed to doc() with literal arguments, best effort."""
    from ..xquery.ast import FunctionCall, Literal, XQNode

    names: List[str] = []

    def walk(node: XQNode) -> None:
        if isinstance(node, FunctionCall) and node.name in ("doc", "fn:doc"):
            if node.args and isinstance(node.args[0], Literal):
                value = node.args[0].value
                if isinstance(value, str):
                    names.append(value)
        for field_name in getattr(node, "__dataclass_fields__", {}):
            value = getattr(node, field_name)
            if isinstance(value, XQNode):
                walk(value)
            elif isinstance(value, tuple):
                for entry in value:
                    if isinstance(entry, XQNode):
                        walk(entry)
                    elif isinstance(entry, tuple):
                        for sub in entry:
                            if isinstance(sub, XQNode):
                                walk(sub)

    walk(query.module.body)
    for declared in query.module.functions:
        walk(declared.body)
    return names


class NativeService(Service):
    """An opaque service backed by a Python callable.

    ``impl(params, peer) -> list[Element]``.  Used for substrate-level
    operations (e.g. registry lookups) and to model third-party WSDL
    services the optimizer must treat as black boxes.
    """

    def __init__(
        self,
        name: str,
        impl: Callable[[Sequence[Element], "Peer"], List[Element]],
        signature: Optional[Signature] = None,
        continuous: bool = True,
        cost_units: int = 10,
    ) -> None:
        super().__init__(name, signature, continuous)
        self.impl = impl
        self.cost_units = cost_units

    def invoke(self, params: Sequence[Element], peer: "Peer") -> List[Element]:
        if self.signature.schema is not None:
            self.signature.check_inputs(list(params))
        self.invocations += 1
        result = self.impl(params, peer)
        if not isinstance(result, list) or not all(
            isinstance(r, Element) for r in result
        ):
            raise ServiceCallError(
                f"native service {self.name!r} must return a list of elements"
            )
        return result

    def work_units(self, params: Sequence[Element]) -> int:
        return super().work_units(params) + self.cost_units
