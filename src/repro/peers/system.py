"""The AXML system state Σ: all documents and services on all peers.

Section 3.3 defines Σ as "all documents and services on p1, ..., pn" and
expression equivalence as equality of post-states over *any* Σ.  This
module provides:

* :class:`AXMLSystem` — peers + network + generic registry, with
  convenience construction;
* :meth:`AXMLSystem.snapshot` — a canonical, comparable image of Σ
  (document canonical forms per peer plus service inventories), used by
  the rewrite verifier (:mod:`repro.core.verify`) to check
  ``eval(e)(Σ) = eval(e')(Σ)``;
* :meth:`AXMLSystem.clone` — a deep copy so both sides of an equivalence
  can be evaluated from the same starting state.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dist.catalog import FragmentCatalog
from ..errors import UnknownPeerError
from ..net.network import Network
from ..net import topology as topo
from ..xmlcore.canon import canonical_form
from ..xmlcore.model import Element
from ..xquery import Query
from .peer import Peer
from .registry import GenericRegistry
from .service import DeclarativeService, NativeService, Service

__all__ = ["AXMLSystem"]


class AXMLSystem:
    """A set of peers, the fabric connecting them, and the shared registry."""

    def __init__(self, network: Optional[Network] = None) -> None:
        self.network = network or Network()
        self.peers: Dict[str, Peer] = {}
        self.registry = GenericRegistry()
        #: Fragment catalog: where the pieces of horizontally fragmented
        #: documents live (see :mod:`repro.dist`).  Queryable through the
        #: ``doc@dist`` binding form and the ``FragmentedDoc`` expression.
        self.fragments = FragmentCatalog()
        #: Virtual time at which the whole system became quiescent after
        #: the last evaluation (set by the expression evaluator).
        self.clock = 0.0
        #: Per-document mutation epochs (see :mod:`repro.writes`).  Only
        #: names that have actually been written appear here; a missing
        #: entry means epoch 0, i.e. the document is exactly as installed.
        #: Cache keys downstream (:func:`repro.core.planspace.doc_epoch_signature`)
        #: fold non-zero epochs in, so a write invalidates precisely the
        #: memo entries that mention the mutated names.
        self.doc_epochs: Dict[str, int] = {}

    # -- construction ----------------------------------------------------------
    @classmethod
    def with_peers(
        cls,
        peer_ids: Sequence[str],
        topology: str = "full_mesh",
        **topology_kwargs,
    ) -> "AXMLSystem":
        """Build a system with the named peers on a standard topology."""
        builder = getattr(topo, topology, None)
        if builder is None:
            raise ValueError(f"unknown topology {topology!r}")
        system = cls(builder(list(peer_ids), **topology_kwargs))
        for peer_id in peer_ids:
            system.add_peer(peer_id)
        return system

    def add_peer(self, peer_id: str, compute_speed: float = 100_000.0) -> Peer:
        if peer_id in self.peers:
            return self.peers[peer_id]
        peer = Peer(peer_id, compute_speed)
        self.peers[peer_id] = peer
        self.network.add_peer(peer_id)
        return peer

    def peer(self, peer_id: str) -> Peer:
        try:
            return self.peers[peer_id]
        except KeyError:
            raise UnknownPeerError(f"unknown peer {peer_id!r}") from None

    def live_peers(self) -> List[str]:
        """Identifiers of peers currently in the system, sorted.

        Dead peers (churn victims, see :mod:`repro.placement`) keep their
        entry in :attr:`peers` for accounting but are excluded here.
        """
        return sorted(pid for pid, peer in self.peers.items() if peer.alive)

    # -- document epochs -----------------------------------------------------------
    def doc_epoch(self, name: str) -> int:
        """Mutation epoch of a document-like name (0 = never written)."""
        return self.doc_epochs.get(name, 0)

    def bump_doc_epoch(self, name: str) -> int:
        """Advance a name's epoch after a mutation; returns the new epoch.

        Callers (:class:`repro.writes.DocumentWriter`) bump every name a
        write made observable through: the logical document, the owning
        fragment, whole-document mirrors, and generic classes.
        """
        epoch = self.doc_epochs.get(name, 0) + 1
        self.doc_epochs[name] = epoch
        return epoch

    # -- state Σ -------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A canonical image of Σ for equality comparison.

        Captures, per peer: every document's canonical form (unordered,
        id-free — matching the paper's tree model) and the service
        inventory (name, declarative source when visible).  Two systems
        with equal snapshots are indistinguishable to further queries.
        """
        image: Dict[str, object] = {}
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            docs = {
                name: canonical_form(tree)
                for name, tree in sorted(peer.documents.items())
            }
            services = {}
            for name, service in sorted(peer.services.items()):
                if isinstance(service, DeclarativeService):
                    services[name] = ("declarative", service.query.source)
                else:
                    services[name] = (type(service).__name__,)
            image[peer_id] = (tuple(sorted(docs.items())), tuple(sorted(services.items())))
        return image

    def clone(self) -> "AXMLSystem":
        """Deep-copy Σ onto a fresh network with identical topology.

        Link qualities are copied; statistics and busy state start clean,
        so both sides of an equivalence check begin from the same ground.
        """
        twin_network = Network()
        for link in self.network.links():
            twin_network.add_link(
                link.src, link.dst, link.latency, link.bandwidth, symmetric=False
            )
        for peer_id in self.network.peers:
            twin_network.add_peer(peer_id)
        twin = AXMLSystem(twin_network)
        for peer_id, peer in self.peers.items():
            twin_peer = twin.add_peer(peer_id, peer.compute_speed)
            twin_peer.alive = peer.alive
            for name, tree in peer.documents.items():
                twin_peer.install_document(name, tree.copy())
            for name, service in peer.services.items():
                twin_peer.install_service(_clone_service(service))
        for generic, members in self.registry._documents.items():
            for member in members:
                twin.registry.register_document(generic, member.name, member.peer)
        for generic, members in self.registry._services.items():
            for member in members:
                twin.registry.register_service(generic, member.name, member.peer)
        # fragment *documents* were cloned with their hosting peers above;
        # the catalog copy is independent, so registering/dropping on one
        # side never shows through to the other.
        twin.fragments = self.fragments.copy()
        twin.doc_epochs = dict(self.doc_epochs)
        return twin

    # -- reporting -----------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-peer accounting for execution reports.

        Merges the network's per-peer traffic attribution with each
        peer's compute counters.  Purely observational — does not touch
        clocks or statistics.
        """
        traffic = self.network.peer_traffic()
        image: Dict[str, Dict[str, object]] = {}
        for peer_id in sorted(self.peers):
            peer = self.peers[peer_id]
            image[peer_id] = {
                "traffic": traffic.get(peer_id),
                "work_done": peer.work_done,
                "busy_until": peer.busy_until,
                "busy_time": peer.busy_time,
                "queued": peer.queued,
                "alive": peer.alive,
                "doc_reads": dict(peer.doc_reads),
            }
        return image

    # -- lifecycle -----------------------------------------------------------------
    def reset_clocks(self) -> None:
        """Zero all virtual-time state (new measurement, same Σ).

        The single reset entry point the serving engine relies on: after
        this call *every* link's ``busy_until``, every peer's CPU clock
        and compute queue, and the system clock are zero — guaranteed
        below so stale occupancy can never leak into the next run.
        """
        self.clock = 0.0
        self.network.reset_clocks()
        for peer in self.peers.values():
            peer.reset_clock()
        assert all(
            link.busy_until == 0.0 for link in self.network.links()
        ), "reset_clocks left a link occupied"
        assert all(
            peer.busy_until == 0.0 and peer.queued == 0
            for peer in self.peers.values()
        ), "reset_clocks left a peer busy"

    def reset_stats(self) -> None:
        self.network.reset_stats()
        for peer in self.peers.values():
            peer.work_done = 0
            peer.busy_time = 0.0
            peer.doc_reads = {}

    def reset(self) -> None:
        """Fresh measurement baseline: clocks *and* statistics, same Σ.

        Documents and services are untouched; only virtual time and the
        accounting counters go back to zero.  :meth:`Session.batch
        <repro.session.Session.batch>` calls this between runs so every
        report measures exactly one plan.
        """
        self.reset_clocks()
        self.reset_stats()

    def __repr__(self) -> str:
        return f"AXMLSystem(peers={sorted(self.peers)})"


def _clone_service(service: Service) -> Service:
    if isinstance(service, DeclarativeService):
        clone = DeclarativeService(
            service.name,
            Query(service.query.source, service.query.params, service.query.name),
            service.signature,
            service.continuous,
        )
        return clone
    if isinstance(service, NativeService):
        return NativeService(
            service.name,
            service.impl,
            service.signature,
            service.continuous,
            service.cost_units,
        )
    raise TypeError(f"cannot clone service of type {type(service).__name__}")
