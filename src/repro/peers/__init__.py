"""Peers, services, generic-name registry, and the system state Σ.

>>> from repro.peers import AXMLSystem
>>> from repro.xmlcore import parse
>>> system = AXMLSystem.with_peers(["p0", "p1"])
>>> _ = system.peer("p0").install_document("d", parse("<a/>"))
>>> svc = system.peer("p1").install_query_service(
...     "echo", "declare variable $x external; <out>{$x}</out>", params=("x",))
>>> svc.arity
1
"""

from .peer import Peer
from .registry import (
    ANY_PEER,
    FirstPolicy,
    GenericMember,
    GenericRegistry,
    LeastLoadedPolicy,
    NearestPolicy,
    PickPolicy,
    POLICIES,
    QueueDepthPolicy,
    RandomPolicy,
)
from .service import DeclarativeService, NativeService, Service
from .system import AXMLSystem

__all__ = [
    "Peer",
    "AXMLSystem",
    "Service",
    "DeclarativeService",
    "NativeService",
    "GenericRegistry",
    "GenericMember",
    "PickPolicy",
    "FirstPolicy",
    "RandomPolicy",
    "NearestPolicy",
    "LeastLoadedPolicy",
    "QueueDepthPolicy",
    "POLICIES",
    "ANY_PEER",
]
