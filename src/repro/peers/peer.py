"""Peers: the contexts of computation hosting documents and services.

A peer (Section 2 of the paper) is identified by ``p ∈ P`` and hosts

* *documents* — named XML trees, ``d@p``, names unique per peer;
* *services* — named operations, ``s@p``.

Peers also model compute capacity: evaluating queries costs virtual time
proportional to the work units divided by ``compute_speed``, and a peer
processes one thing at a time (``busy_until``), so delegating work to an
idle fast peer is a *measurable* win — which is what rules (10)/(14) are
about.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..errors import (
    DuplicateNameError,
    UnknownDocumentError,
    UnknownServiceError,
)
from ..xmlcore.model import Element, NodeId, NodeIdAllocator, iter_elements, tree_size
from ..xquery import Query
from .service import DeclarativeService, Service

__all__ = ["Peer"]


class Peer:
    """One peer: documents, services, id allocation, compute accounting."""

    def __init__(self, peer_id: str, compute_speed: float = 100_000.0) -> None:
        self.peer_id = peer_id
        self.documents: Dict[str, Element] = {}
        self.services: Dict[str, Service] = {}
        self.allocator = NodeIdAllocator(peer_id)
        #: Work units (tree nodes) processed per second of virtual time.
        self.compute_speed = compute_speed
        #: Virtual instant until which the peer's CPU is occupied.
        self.busy_until = 0.0
        #: Total work units executed (for benchmark reporting).
        self.work_done = 0
        #: Total virtual seconds the CPU was occupied (utilization numerator;
        #: unlike ``busy_until`` this survives idle gaps between jobs).
        self.busy_time = 0.0
        #: Jobs currently admitted to this peer's compute queue but not yet
        #: finished.  Maintained by the serving engine
        #: (:mod:`repro.engine.scheduler`); replica-aware admission policies
        #: read it to route generic picks toward shallow queues.
        self.queued = 0
        #: Whether the peer is part of the live system.  Churn
        #: (:mod:`repro.placement`) marks peers dead instead of deleting
        #: them so in-flight accounting can settle; dead peers refuse
        #: evaluations and document reads via the evaluator.
        self.alive = True
        #: Per-document read counter (``document()`` hits), the demand
        #: signal consumed by :class:`repro.placement.PlacementMonitor`.
        self.doc_reads: Dict[str, int] = {}

    # -- documents ---------------------------------------------------------------
    def install_document(
        self, name: str, tree: Element, replace: bool = False
    ) -> Element:
        """Install ``tree`` under ``name``; assigns fresh node ids.

        The paper forbids two documents agreeing on ``(d, p)``; installing
        an existing name raises unless ``replace`` is set (used by stream
        re-materialization).
        """
        if name in self.documents and not replace:
            raise DuplicateNameError(
                f"document {name!r} already exists on peer {self.peer_id!r}"
            )
        self.allocator.assign(tree)
        self.documents[name] = tree
        return tree

    def document(self, name: str) -> Element:
        try:
            tree = self.documents[name]
        except KeyError:
            raise UnknownDocumentError(
                f"no document {name!r} on peer {self.peer_id!r}"
            ) from None
        self.doc_reads[name] = self.doc_reads.get(name, 0) + 1
        return tree

    def has_document(self, name: str) -> bool:
        return name in self.documents

    def drop_document(self, name: str) -> None:
        self.documents.pop(name, None)

    def fresh_document_name(self, prefix: str = "tmp") -> str:
        index = 0
        while f"{prefix}-{index}" in self.documents:
            index += 1
        return f"{prefix}-{index}"

    def doc_resolver(self, name: str) -> Element:
        """Resolver handed to queries: ``doc(n)`` reads this peer's data."""
        return self.document(name)

    def find_node(self, node_id: NodeId) -> Optional[Element]:
        """Locate a node by id across all hosted documents."""
        if node_id.peer != self.peer_id:
            return None
        for tree in self.documents.values():
            for node in iter_elements(tree):
                if node.node_id == node_id:
                    return node
        return None

    # -- services -----------------------------------------------------------------
    def install_service(self, service: Service, replace: bool = False) -> Service:
        if service.name in self.services and not replace:
            raise DuplicateNameError(
                f"service {service.name!r} already exists on peer {self.peer_id!r}"
            )
        service.bind(self)
        self.services[service.name] = service
        return service

    def install_query_service(
        self, name: str, source: str, params: Sequence[str] = (), replace: bool = False
    ) -> DeclarativeService:
        """Shorthand: wrap XQuery source as a declarative service."""
        query = Query(source, params=params, name=name)
        service = DeclarativeService(name, query)
        self.install_service(service, replace=replace)
        return service

    def service(self, name: str) -> Service:
        try:
            return self.services[name]
        except KeyError:
            raise UnknownServiceError(
                f"no service {name!r} on peer {self.peer_id!r}"
            ) from None

    def has_service(self, name: str) -> bool:
        return name in self.services

    def fresh_service_name(self, prefix: str = "svc") -> str:
        index = 0
        while f"{prefix}-{index}" in self.services:
            index += 1
        return f"{prefix}-{index}"

    # -- compute accounting ----------------------------------------------------------
    def charge(self, work_units: int, ready_at: float = 0.0) -> float:
        """Run ``work_units`` of computation; returns completion time.

        The CPU is a serial resource: work starts at
        ``max(ready_at, busy_until)``.
        """
        start = max(ready_at, self.busy_until)
        duration = work_units / self.compute_speed
        self.busy_until = start + duration
        self.work_done += work_units
        self.busy_time += duration
        return self.busy_until

    def evaluate(
        self,
        query: Query,
        params: Sequence[List] = (),
        ready_at: float = 0.0,
    ) -> tuple:
        """Evaluate ``query`` locally; returns (result_items, done_time).

        ``doc()`` resolves against this peer.  Work is estimated as the
        size of all inputs plus referenced documents.
        """
        bound = query.bind_resolver(self.doc_resolver)
        result = bound.run(*params)
        work = 1
        for param in params:
            for item in param if isinstance(param, list) else [param]:
                if isinstance(item, Element):
                    work += tree_size(item)
        done = self.charge(work, ready_at)
        return result, done

    # -- compute queue -----------------------------------------------------------
    def enqueue_job(self) -> int:
        """Admit one serving job to this peer's compute queue."""
        self.queued += 1
        return self.queued

    def dequeue_job(self) -> int:
        """Retire one serving job from this peer's compute queue."""
        if self.queued > 0:
            self.queued -= 1
        return self.queued

    def reset_clock(self) -> None:
        """Zero occupancy state: the CPU clock and the compute queue."""
        self.busy_until = 0.0
        self.queued = 0

    def __repr__(self) -> str:
        return (
            f"Peer({self.peer_id!r}, docs={len(self.documents)}, "
            f"services={len(self.services)})"
        )
