"""Generic documents and services (paper Section 2.3) and pick policies.

A *generic document* ``d@any`` names an equivalence class of regular
documents considered interchangeable (replicas whose fixpoints coincide);
similarly for generic services.  Definition (9) of the paper resolves a
generic reference via a per-peer ``pickDoc`` / ``pickService`` function
whose "implementation ... depends on p's knowledge of the existing
documents and services, p's preferences etc.".

We implement that as a shared :class:`GenericRegistry` (who belongs to
which class) plus pluggable :class:`PickPolicy` strategies (what a given
peer prefers): first / random / nearest-by-latency / least-loaded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..errors import GenericResolutionError, ReproError
from ..xmlcore.canon import canonical_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..net.network import Network
    from .system import AXMLSystem

__all__ = [
    "GenericMember",
    "GenericRegistry",
    "PickPolicy",
    "FirstPolicy",
    "RandomPolicy",
    "NearestPolicy",
    "LeastLoadedPolicy",
    "QueueDepthPolicy",
    "LinkAwarePolicy",
    "POLICIES",
]

ANY_PEER = "any"


@dataclass(frozen=True)
class GenericMember:
    """One member of an equivalence class: a concrete name at a peer."""

    name: str
    peer: str

    def __str__(self) -> str:
        return f"{self.name}@{self.peer}"


class PickPolicy:
    """Strategy deciding which member a given peer should use."""

    def choose(
        self,
        members: List[GenericMember],
        requester: str,
        system: "AXMLSystem",
    ) -> GenericMember:
        raise NotImplementedError


class FirstPolicy(PickPolicy):
    """Deterministic: registration order (the AXML default behaviour)."""

    def choose(self, members, requester, system):
        return members[0]


class RandomPolicy(PickPolicy):
    """Uniform random choice; seeded for reproducibility."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, members, requester, system):
        return self._rng.choice(members)


class NearestPolicy(PickPolicy):
    """Pick the member whose route from the requester is cheapest.

    Locality preference — with replicated mirrors this is the policy that
    makes generic documents an optimization rather than a convenience.
    A member on the requesting peer itself always wins (cost 0).
    """

    def choose(self, members, requester, system):
        def cost(member: GenericMember) -> float:
            if member.peer == requester:
                return 0.0
            links = system.network.route(requester, member.peer)
            return sum(
                link.latency + 1024.0 / link.bandwidth for link in links
            )

        return min(members, key=cost)


class LeastLoadedPolicy(PickPolicy):
    """Pick the member whose hosting peer is least busy (CPU pressure)."""

    def choose(self, members, requester, system):
        def load(member: GenericMember) -> float:
            return system.peer(member.peer).busy_until

        return min(members, key=load)


class QueueDepthPolicy(PickPolicy):
    """Replica-aware serving admission: route to the shallowest queue.

    Under concurrent serving (:mod:`repro.engine`) peers are contended
    resources with explicit compute queues (:attr:`Peer.queued
    <repro.peers.peer.Peer.queued>`).  This policy resolves a generic
    reference toward the member whose hosting peer currently has the
    fewest admitted-but-unfinished jobs; ties break on the CPU clock
    (``busy_until``), then on locality (a member on the requesting peer
    wins), then on registration order — fully deterministic, so the
    scheduler's event trace stays byte-stable across runs.
    """

    def choose(self, members, requester, system):
        def depth(indexed: Tuple[int, GenericMember]):
            index, member = indexed
            peer = system.peer(member.peer)
            return (
                peer.queued,
                peer.busy_until,
                member.peer != requester,
                index,
            )

        return min(enumerate(members), key=depth)[1]


class LinkAwarePolicy(PickPolicy):
    """Queue-depth admission that can also see the *network* clock.

    :class:`QueueDepthPolicy` balances compute queues, but replica
    *reads* are usually transfer-bound: shipping a fragment occupies the
    FIFO link from the holder to the reader, and link occupancy never
    shows up in any peer's CPU clock.  This policy keeps the queue-depth
    ordering and inserts the route's ``busy_until`` (the instant the
    last link on the member→requester route frees) ahead of the CPU
    tie-breaks, so concurrent reads of a replicated fragment fan out
    across copies instead of convoying on the primary's link.  A member
    on the requesting peer always wins: a local read touches neither the
    network nor the host's compute queue, so no amount of congestion
    elsewhere makes a remote copy cheaper.  Fully deterministic, like
    every serving policy.

    The adaptive-placement loop (:mod:`repro.placement`) is what makes
    this matter: replicas it spawns only relieve a hot link if picks can
    notice the hot link.  Opt in with ``admission="link-aware"``.
    """

    def choose(self, members, requester, system):
        def route_clock(member: GenericMember) -> float:
            if member.peer == requester:
                return 0.0
            try:
                links = system.network.route(member.peer, requester)
            except ReproError:
                return float("inf")
            return max((link.busy_until for link in links), default=0.0)

        def depth(indexed: Tuple[int, GenericMember]):
            index, member = indexed
            peer = system.peer(member.peer)
            return (
                member.peer != requester,
                peer.queued,
                route_clock(member),
                peer.busy_until,
                index,
            )

        return min(enumerate(members), key=depth)[1]


POLICIES: Dict[str, Callable[[], PickPolicy]] = {
    "first": FirstPolicy,
    "random": RandomPolicy,
    "nearest": NearestPolicy,
    "least-loaded": LeastLoadedPolicy,
    "queue-depth": QueueDepthPolicy,
    "link-aware": LinkAwarePolicy,
}


def _live(
    members: Optional[List[GenericMember]], system: "AXMLSystem"
) -> List[GenericMember]:
    """Members whose hosting peer is still alive (or unknown to Σ).

    :class:`ChurnController <repro.placement.ChurnController>` eagerly
    unregisters dead peers' members; this filter is the belt-and-braces
    guarantee that even an un-reacted kill never routes a pick to a dead
    peer mid-run.
    """
    if not members:
        return []
    return [
        m
        for m in members
        if m.peer not in system.peers or system.peers[m.peer].alive
    ]


class GenericRegistry:
    """Membership of document / service equivalence classes.

    The registry is logically replicated on every peer (the paper leaves
    the mechanism open — DHT, gossip, static config); we model it as
    shared state with zero lookup cost, and charge only the *data*
    transfers that follow a pick, which is what the experiments measure.
    """

    def __init__(self) -> None:
        self._documents: Dict[str, List[GenericMember]] = {}
        self._services: Dict[str, List[GenericMember]] = {}

    # -- registration ----------------------------------------------------------
    def register_document(self, generic_name: str, name: str, peer: str) -> None:
        members = self._documents.setdefault(generic_name, [])
        member = GenericMember(name, peer)
        if member not in members:
            members.append(member)

    def register_service(self, generic_name: str, name: str, peer: str) -> None:
        members = self._services.setdefault(generic_name, [])
        member = GenericMember(name, peer)
        if member not in members:
            members.append(member)

    def document_classes(self, name: str, peer: str) -> List[str]:
        """Generic classes containing the concrete member ``name@peer``.

        The write path (:mod:`repro.writes`) uses this to find every
        mirror a mutated document must stay coherent with.
        """
        return sorted(
            generic
            for generic, members in self._documents.items()
            if any(m.name == name and m.peer == peer for m in members)
        )

    def unregister_document(self, generic_name: str, name: str, peer: str) -> None:
        members = self._documents.get(generic_name, [])
        members[:] = [m for m in members if not (m.name == name and m.peer == peer)]

    def remove_peer(self, peer: str) -> int:
        """Drop every membership hosted on ``peer`` (churn cleanup).

        Called by :class:`repro.placement.ChurnController` when a peer
        dies, so generic resolution never routes a pick to it.  Returns
        the number of memberships removed.
        """
        removed = 0
        for classes in (self._documents, self._services):
            for members in classes.values():
                before = len(members)
                members[:] = [m for m in members if m.peer != peer]
                removed += before - len(members)
        return removed

    def document_members(self, generic_name: str) -> List[GenericMember]:
        return list(self._documents.get(generic_name, []))

    def service_members(self, generic_name: str) -> List[GenericMember]:
        return list(self._services.get(generic_name, []))

    # -- resolution (definition (9)) ------------------------------------------------
    def pick_document(
        self,
        generic_name: str,
        requester: str,
        system: "AXMLSystem",
        policy: Optional[PickPolicy] = None,
    ) -> GenericMember:
        members = _live(self._documents.get(generic_name), system)
        if not members:
            raise GenericResolutionError(
                f"generic document {generic_name!r}@any has no live members"
            )
        return (policy or FirstPolicy()).choose(members, requester, system)

    def pick_service(
        self,
        generic_name: str,
        requester: str,
        system: "AXMLSystem",
        policy: Optional[PickPolicy] = None,
    ) -> GenericMember:
        members = _live(self._services.get(generic_name), system)
        if not members:
            raise GenericResolutionError(
                f"generic service {generic_name!r}@any has no live members"
            )
        return (policy or FirstPolicy()).choose(members, requester, system)

    # -- integrity ---------------------------------------------------------------
    def check_document_equivalence(self, generic_name: str, system: "AXMLSystem") -> bool:
        """Verify all current members are structurally equivalent.

        The paper's ≡ is about eventual fixpoints; for materialized
        replicas the decidable check is canonical-form equality.  Returns
        True when the class is consistent (or has < 2 members).
        """
        members = self._documents.get(generic_name, [])
        digests = set()
        for member in members:
            peer = system.peer(member.peer)
            if not peer.has_document(member.name):
                continue
            digests.add(canonical_hash(peer.document(member.name)))
        return len(digests) <= 1
