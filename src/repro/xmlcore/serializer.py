"""Serialization of the XML data model back to text.

Two modes: compact (no inserted whitespace — what goes on the wire, and
what :func:`repro.xmlcore.model.Element.serialized_size` approximates) and
pretty-printed (for humans, README examples, and test failure output).
"""

from __future__ import annotations

from typing import List

from .model import Element, Node, NodeId, Text

__all__ = ["serialize", "pretty", "escape_text", "escape_attr"]


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(value: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def _open_tag(node: Element, with_ids: bool) -> str:
    parts = [node.tag]
    if with_ids and node.node_id is not None:
        parts.append(f'__id="{node.node_id}"')
    for name in sorted(node.attrs):
        parts.append(f'{name}="{escape_attr(node.attrs[name])}"')
    return " ".join(parts)


def serialize(node: Node, with_ids: bool = False) -> str:
    """Serialize compactly (wire format).

    When ``with_ids`` is true, element node identifiers are emitted as a
    reserved ``__id`` attribute so identifiers survive a round trip — used
    when shipping subtrees whose nodes may appear in forward lists.
    """
    out: List[str] = []
    _serialize_into(node, out, with_ids)
    return "".join(out)


def _serialize_into(node: Node, out: List[str], with_ids: bool) -> None:
    if isinstance(node, Text):
        out.append(escape_text(node.value))
        return
    assert isinstance(node, Element)
    open_tag = _open_tag(node, with_ids)
    if not node.children:
        out.append(f"<{open_tag}/>")
        return
    out.append(f"<{open_tag}>")
    for child in node.children:
        _serialize_into(child, out, with_ids)
    out.append(f"</{node.tag}>")


def pretty(node: Node, indent: str = "  ") -> str:
    """Human-readable serialization with one element per line.

    Text-only elements are kept on a single line; mixed content is emitted
    compactly to avoid changing its string value.
    """
    out: List[str] = []
    _pretty_into(node, out, 0, indent)
    return "\n".join(out)


def _pretty_into(node: Node, out: List[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if isinstance(node, Text):
        if node.value.strip():
            out.append(pad + escape_text(node.value.strip()))
        return
    assert isinstance(node, Element)
    open_tag = _open_tag(node, with_ids=False)
    if not node.children:
        out.append(f"{pad}<{open_tag}/>")
        return
    has_element_child = any(isinstance(c, Element) for c in node.children)
    if not has_element_child:
        value = escape_text(node.string_value())
        out.append(f"{pad}<{open_tag}>{value}</{node.tag}>")
        return
    out.append(f"{pad}<{open_tag}>")
    for child in node.children:
        _pretty_into(child, out, depth + 1, indent)
    out.append(f"{pad}</{node.tag}>")


def restore_ids(root: Element) -> None:
    """Re-attach node ids carried in ``__id`` attributes after parsing.

    Inverse of ``serialize(..., with_ids=True)``: consumes the reserved
    attribute and populates ``node_id``.
    """
    from .model import iter_elements

    for node in iter_elements(root):
        raw = node.attrs.pop("__id", None)
        if raw is not None:
            node.node_id = NodeId.parse(raw)
