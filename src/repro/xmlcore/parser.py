"""A from-scratch XML 1.0 subset parser.

Supports the constructs the framework needs: elements, attributes
(single- or double-quoted), character data, CDATA sections, comments,
processing instructions (skipped), an XML declaration (skipped), and the
five predefined entities plus decimal / hexadecimal character references.

Not supported (not needed here and rejected loudly where relevant):
DTDs / internal subsets, namespaces-as-URIs (prefixes are kept verbatim
as part of the tag name), and external entities — their absence also keeps
the parser safe against entity-expansion attacks by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import XMLSyntaxError
from .model import Element, Node, Text

__all__ = ["parse", "parse_fragment"]

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:-."


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Cursor:
    """Tracks position within the source text, with line/column for errors."""

    __slots__ = ("source", "pos", "length")

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    def at_end(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def startswith(self, prefix: str) -> bool:
        return self.source.startswith(prefix, self.pos)

    def location(self) -> Tuple[int, int]:
        """(line, column), both 1-based, of the current position."""
        consumed = self.source[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XMLSyntaxError:
        line, column = self.location()
        return XMLSyntaxError(message, line, column)


class _Parser:
    def __init__(self, source: str) -> None:
        self.cursor = _Cursor(source)

    # -- top level ---------------------------------------------------------
    def parse_document(self) -> Element:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if not self.cursor.at_end():
            raise self.cursor.error("content after document element")
        return root

    def parse_fragment(self) -> List[Node]:
        """Parse a sequence of top-level nodes (forest), e.g. stream payloads."""
        self._skip_prolog()
        nodes: List[Node] = []
        while not self.cursor.at_end():
            if self.cursor.startswith("<!--"):
                self._skip_comment()
            elif self.cursor.startswith("<?"):
                self._skip_pi()
            elif self.cursor.peek() == "<":
                nodes.append(self._parse_element())
            else:
                chunk = self._parse_text()
                if chunk.value.strip():
                    nodes.append(chunk)
        return nodes

    # -- prolog / misc -------------------------------------------------------
    def _skip_prolog(self) -> None:
        self._skip_whitespace()
        while True:
            if self.cursor.startswith("<?"):
                self._skip_pi()
            elif self.cursor.startswith("<!--"):
                self._skip_comment()
            elif self.cursor.startswith("<!DOCTYPE"):
                raise self.cursor.error("DOCTYPE declarations are not supported")
            else:
                break
            self._skip_whitespace()

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self.cursor.startswith("<!--"):
                self._skip_comment()
            elif self.cursor.startswith("<?"):
                self._skip_pi()
            else:
                break

    def _skip_whitespace(self) -> None:
        while not self.cursor.at_end() and self.cursor.peek().isspace():
            self.cursor.advance()

    def _skip_comment(self) -> None:
        end = self.cursor.source.find("-->", self.cursor.pos + 4)
        if end < 0:
            raise self.cursor.error("unterminated comment")
        self.cursor.pos = end + 3

    def _skip_pi(self) -> None:
        end = self.cursor.source.find("?>", self.cursor.pos + 2)
        if end < 0:
            raise self.cursor.error("unterminated processing instruction")
        self.cursor.pos = end + 2

    # -- elements ------------------------------------------------------------
    def _parse_element(self) -> Element:
        if self.cursor.peek() != "<":
            raise self.cursor.error("expected '<'")
        self.cursor.advance()
        tag = self._parse_name()
        attrs = self._parse_attributes()
        self._skip_whitespace()
        if self.cursor.startswith("/>"):
            self.cursor.advance(2)
            return Element(tag, attrs)
        if self.cursor.peek() != ">":
            raise self.cursor.error(f"malformed start tag <{tag}>")
        self.cursor.advance()
        node = Element(tag, attrs)
        self._parse_content(node)
        close = self._parse_name()
        if close != tag:
            raise self.cursor.error(
                f"mismatched end tag: expected </{tag}>, found </{close}>"
            )
        self._skip_whitespace()
        if self.cursor.peek() != ">":
            raise self.cursor.error(f"malformed end tag </{close}>")
        self.cursor.advance()
        return node

    def _parse_content(self, parent: Element) -> None:
        while True:
            if self.cursor.at_end():
                raise self.cursor.error(f"unterminated element <{parent.tag}>")
            if self.cursor.startswith("</"):
                self.cursor.advance(2)
                return
            if self.cursor.startswith("<!--"):
                self._skip_comment()
            elif self.cursor.startswith("<![CDATA["):
                parent.append(self._parse_cdata())
            elif self.cursor.startswith("<?"):
                self._skip_pi()
            elif self.cursor.peek() == "<":
                parent.append(self._parse_element())
            else:
                chunk = self._parse_text()
                if chunk.value:
                    parent.append(chunk)

    def _parse_cdata(self) -> Text:
        self.cursor.advance(len("<![CDATA["))
        end = self.cursor.source.find("]]>", self.cursor.pos)
        if end < 0:
            raise self.cursor.error("unterminated CDATA section")
        value = self.cursor.source[self.cursor.pos : end]
        self.cursor.pos = end + 3
        return Text(value)

    def _parse_text(self) -> Text:
        parts: List[str] = []
        while not self.cursor.at_end() and self.cursor.peek() != "<":
            ch = self.cursor.peek()
            if ch == "&":
                parts.append(self._parse_entity())
            else:
                parts.append(ch)
                self.cursor.advance()
        return Text("".join(parts))

    # -- lexical pieces --------------------------------------------------------
    def _parse_name(self) -> str:
        start = self.cursor.pos
        if not _is_name_start(self.cursor.peek()):
            raise self.cursor.error("expected a name")
        self.cursor.advance()
        while _is_name_char(self.cursor.peek()):
            self.cursor.advance()
        return self.cursor.source[start : self.cursor.pos]

    def _parse_attributes(self) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            ch = self.cursor.peek()
            if ch in (">", "/") or self.cursor.at_end():
                return attrs
            name = self._parse_name()
            self._skip_whitespace()
            if self.cursor.peek() != "=":
                raise self.cursor.error(f"attribute {name!r} missing '='")
            self.cursor.advance()
            self._skip_whitespace()
            quote = self.cursor.peek()
            if quote not in ('"', "'"):
                raise self.cursor.error(f"attribute {name!r} value must be quoted")
            self.cursor.advance()
            parts: List[str] = []
            while self.cursor.peek() != quote:
                if self.cursor.at_end():
                    raise self.cursor.error(f"unterminated attribute {name!r}")
                if self.cursor.peek() == "&":
                    parts.append(self._parse_entity())
                else:
                    parts.append(self.cursor.peek())
                    self.cursor.advance()
            self.cursor.advance()
            if name in attrs:
                raise self.cursor.error(f"duplicate attribute {name!r}")
            attrs[name] = "".join(parts)

    def _parse_entity(self) -> str:
        semi = self.cursor.source.find(";", self.cursor.pos + 1)
        if semi < 0 or semi - self.cursor.pos > 12:
            raise self.cursor.error("malformed entity reference")
        body = self.cursor.source[self.cursor.pos + 1 : semi]
        self.cursor.pos = semi + 1
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[body]
        raise self.cursor.error(f"unknown entity &{body};")


def parse(source: str) -> Element:
    """Parse an XML document string into its root :class:`Element`.

    >>> parse("<a x='1'><b>hi</b></a>").tag
    'a'
    """
    return _Parser(source).parse_document()


def parse_fragment(source: str) -> List[Node]:
    """Parse a forest (zero or more top-level nodes).

    Whitespace-only text between top-level elements is dropped; this is the
    entry point used for streamed payloads carrying several trees at once.
    """
    return _Parser(source).parse_fragment()
