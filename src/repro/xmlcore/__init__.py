"""XML substrate: data model, parser, serializer, canonical forms, schema.

This package is self-contained (stdlib only) and is the foundation every
other subsystem builds on.  Quick tour:

>>> from repro.xmlcore import parse, serialize, element, equivalent
>>> t = parse("<a><b>1</b><c/></a>")
>>> serialize(t)
'<a><b>1</b><c/></a>'
>>> equivalent(t, parse("<a><c/><b>1</b></a>"))  # unordered model
True
"""

from .model import (
    SC_LABEL,
    Element,
    Node,
    NodeId,
    NodeIdAllocator,
    Text,
    element,
    find_by_id,
    find_first,
    iter_elements,
    iter_nodes,
    text,
    tree_size,
)
from .canon import canonical_form, canonical_hash, equivalent, ordered_equal
from .parser import parse, parse_fragment
from .serializer import pretty, restore_ids, serialize
from .schema import (
    ANY,
    EMPTY,
    UNBOUNDED,
    AnyType,
    Choice,
    ContentModel,
    ElementType,
    Interleave,
    Occurs,
    Ref,
    Schema,
    Sequence,
    Signature,
    TextType,
)

__all__ = [
    "SC_LABEL",
    "Element",
    "Node",
    "NodeId",
    "NodeIdAllocator",
    "Text",
    "element",
    "text",
    "find_by_id",
    "find_first",
    "iter_elements",
    "iter_nodes",
    "tree_size",
    "canonical_form",
    "canonical_hash",
    "equivalent",
    "ordered_equal",
    "parse",
    "parse_fragment",
    "pretty",
    "restore_ids",
    "serialize",
    "ANY",
    "EMPTY",
    "UNBOUNDED",
    "AnyType",
    "Choice",
    "ContentModel",
    "ElementType",
    "Interleave",
    "Occurs",
    "Ref",
    "Schema",
    "Sequence",
    "Signature",
    "TextType",
]
