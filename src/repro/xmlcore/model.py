"""XML data model: labelled, unranked trees with peer-scoped node identifiers.

The paper (Section 2.1) views an XML tree as an unranked, *unordered* tree
whose leaves carry labels from ``L`` and whose internal nodes carry a label
and an identifier from ``N``.  We keep children in an ordered list — XQuery
semantics need a document order — but all equivalence comparisons used by
the framework (:mod:`repro.xmlcore.canon`) treat trees as unordered, as the
paper specifies.

Two node kinds exist:

* :class:`Element` — label (tag), attributes, children, optional node id;
* :class:`Text` — a leaf holding character data.

Node identifiers (:class:`NodeId`) are ``n@p`` pairs: a serial number plus
the identifier of the hosting peer, so forward lists (``forw`` children of
``sc`` nodes) can address "add the response under node n on peer p".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Union

__all__ = [
    "NodeId",
    "NodeIdAllocator",
    "Node",
    "Element",
    "Text",
    "element",
    "text",
    "tree_size",
    "iter_elements",
    "iter_nodes",
    "find_by_id",
    "SC_LABEL",
]

#: Reserved label marking service-call nodes in AXML documents (Section 2.2).
SC_LABEL = "sc"

#: Digest width of :meth:`Node.content_fingerprint` (collision probability
#: is negligible at the plan-space scales the optimizer enumerates).
_FP_BYTES = 12


@dataclass(frozen=True, order=True)
class NodeId:
    """A node identifier ``n@p``: serial number ``serial`` on peer ``peer``."""

    peer: str
    serial: int

    def __str__(self) -> str:
        return f"n{self.serial}@{self.peer}"

    @classmethod
    def parse(cls, token: str) -> "NodeId":
        """Parse ``n<serial>@<peer>`` back into a :class:`NodeId`."""
        if "@" not in token or not token.startswith("n"):
            raise ValueError(f"not a node identifier: {token!r}")
        serial_part, peer = token[1:].split("@", 1)
        return cls(peer=peer, serial=int(serial_part))


class NodeIdAllocator:
    """Hands out fresh :class:`NodeId` values for one peer.

    Each peer owns one allocator, guaranteeing that identifiers are unique
    per peer and therefore globally unique as ``(peer, serial)`` pairs.
    """

    def __init__(self, peer: str, start: int = 1) -> None:
        self.peer = peer
        self._counter = itertools.count(start)

    def fresh(self) -> NodeId:
        """Return the next unused node identifier on this peer."""
        return NodeId(self.peer, next(self._counter))

    def assign(self, root: "Element") -> None:
        """Assign fresh ids to every element in ``root`` lacking one."""
        for node in iter_elements(root):
            if node.node_id is None:
                node.node_id = self.fresh()


class Node:
    """Abstract base for tree nodes.  See :class:`Element`, :class:`Text`."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional["Element"] = None

    # -- interface -------------------------------------------------------
    def copy(self) -> "Node":
        """Deep-copy the subtree rooted here (parent pointer cleared)."""
        raise NotImplementedError

    def string_value(self) -> str:
        """Concatenation of all descendant text, per XPath string-value."""
        raise NotImplementedError

    def serialized_size(self) -> int:
        """Approximate serialized byte size; used for transfer accounting."""
        raise NotImplementedError

    def content_fingerprint(self) -> str:
        """Structural digest of the subtree: label, attributes, children.

        Node identifiers are excluded (like :meth:`serialized_size`), so
        a copy — including copies living on a cloned Σ — fingerprints
        identically to its original.  Child *order* is preserved: this is
        the digest of the serialized form, not of the unordered canonical
        form in :mod:`repro.xmlcore.canon`.
        """
        raise NotImplementedError


class Text(Node):
    """A text leaf.  ``value`` holds the character data.

    ``value`` is treated as immutable by the caching layer: replace a
    text node (via its parent's mutators) rather than assigning to
    ``value`` on a tree whose sizes/fingerprints may be cached.
    """

    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        super().__init__()
        self.value = value

    def copy(self) -> "Text":
        return Text(self.value)

    def string_value(self) -> str:
        return self.value

    def serialized_size(self) -> int:
        return len(self.value.encode("utf-8"))

    def content_fingerprint(self) -> str:
        digest = blake2b(digest_size=_FP_BYTES)
        digest.update(b"t\x00")
        digest.update(self.value.encode("utf-8"))
        return digest.hexdigest()

    def __repr__(self) -> str:
        return f"Text({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def __hash__(self) -> int:  # pragma: no cover - identity not hashed often
        return hash(("text", self.value))


class Element(Node):
    """An element node: label, attributes, ordered children, optional id.

    Children are either :class:`Element` or :class:`Text`.  Mutating helpers
    (:meth:`append`, :meth:`remove`, :meth:`replace_child`, :meth:`set_attr`)
    keep parent pointers consistent *and* invalidate the cached
    ``serialized_size`` / ``content_fingerprint`` of every ancestor; use
    them rather than touching ``children`` or ``attrs`` directly when
    restructuring live documents, or stale caches will follow.
    """

    __slots__ = ("tag", "attrs", "children", "node_id", "_size_cache", "_fp_cache")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        children: Optional[Iterable[Node]] = None,
        node_id: Optional[NodeId] = None,
    ) -> None:
        super().__init__()
        self.tag = tag
        self.attrs: Dict[str, str] = dict(attrs) if attrs else {}
        self.children: List[Node] = []
        self.node_id = node_id
        self._size_cache: Optional[int] = None
        self._fp_cache: Optional[str] = None
        if children:
            for child in children:
                self.append(child)

    # -- construction / mutation -----------------------------------------
    def _invalidate_content(self) -> None:
        """Drop cached size/fingerprint here and on every ancestor."""
        node: Optional[Element] = self
        while node is not None:
            node._size_cache = None
            node._fp_cache = None
            node = node.parent

    def append(self, child: Node) -> Node:
        """Append ``child`` as the last child and set its parent pointer."""
        child.parent = self
        self.children.append(child)
        self._invalidate_content()
        return child

    def extend(self, children: Iterable[Node]) -> None:
        for child in children:
            self.append(child)

    def insert(self, index: int, child: Node) -> Node:
        child.parent = self
        self.children.insert(index, child)
        self._invalidate_content()
        return child

    def insert_after(self, anchor: Node, child: Node) -> Node:
        """Insert ``child`` immediately after ``anchor`` (a current child).

        This is the accumulation primitive for continuous service results:
        responses pile up as siblings of the ``sc`` node (Section 2.2).
        """
        index = self.index_of(anchor)
        return self.insert(index + 1, child)

    def remove(self, child: Node) -> None:
        self.children.remove(child)
        child.parent = None
        self._invalidate_content()

    def replace_child(self, old: Node, new: Node) -> None:
        index = self.index_of(old)
        old.parent = None
        new.parent = self
        self.children[index] = new
        self._invalidate_content()

    def set_attr(self, name: str, value: str) -> None:
        """Set an attribute, invalidating cached sizes/fingerprints.

        The cache-safe counterpart of ``self.attrs[name] = value`` for
        trees that may already have been measured.
        """
        self.attrs[name] = value
        self._invalidate_content()

    def detach(self) -> "Element":
        """Remove this element from its parent (if any) and return it."""
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def index_of(self, child: Node) -> int:
        for index, candidate in enumerate(self.children):
            if candidate is child:
                return index
        raise ValueError(f"{child!r} is not a child of {self!r}")

    # -- queries -----------------------------------------------------------
    @property
    def element_children(self) -> List["Element"]:
        return [c for c in self.children if isinstance(c, Element)]

    @property
    def text_children(self) -> List[Text]:
        return [c for c in self.children if isinstance(c, Text)]

    def child_by_tag(self, tag: str) -> Optional["Element"]:
        """First element child with the given tag, or ``None``."""
        for child in self.element_children:
            if child.tag == tag:
                return child
        return None

    def children_by_tag(self, tag: str) -> List["Element"]:
        return [c for c in self.element_children if c.tag == tag]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(name, default)

    def string_value(self) -> str:
        return "".join(child.string_value() for child in self.children)

    def is_service_call(self) -> bool:
        """True when this element is an ``sc`` (service-call) node."""
        return self.tag == SC_LABEL

    # -- lifecycle ---------------------------------------------------------
    def copy(self) -> "Element":
        """Deep copy; node ids are preserved on the copy, parents cleared.

        Copies made for *shipping* deliberately keep ids so the receiver can
        correlate; the receiving peer re-assigns ids on installation
        (see :meth:`repro.peers.peer.Peer.install_document`).
        """
        clone = Element(self.tag, dict(self.attrs), node_id=self.node_id)
        for child in self.children:
            clone.append(child.copy())
        # The clone starts cache-cold: sharing ``_size_cache``/``_fp_cache``
        # with the original would let a stale measurement (e.g. after a
        # direct ``Text.value`` assignment that bypassed the mutation
        # helpers) survive into a tree that never computed it.
        return clone

    def copy_without_ids(self) -> "Element":
        """Deep copy with every node id cleared (fresh-document semantics)."""
        clone = self.copy()
        for node in iter_elements(clone):
            node.node_id = None
        return clone

    def serialized_size(self) -> int:
        """Byte size of ``<tag attrs>children</tag>`` in UTF-8, approximated
        without building the string (used heavily in transfer accounting).

        Computed once per finished subtree and cached; the mutating helpers
        invalidate the cache up the ancestor chain, so repeated cost
        estimation over a stable document is O(1) instead of a tree walk.
        """
        if self._size_cache is not None:
            return self._size_cache
        tag_bytes = len(self.tag.encode("utf-8"))
        size = tag_bytes * 2 + 5  # <tag></tag>
        for name, value in self.attrs.items():
            size += len(name.encode("utf-8")) + len(value.encode("utf-8")) + 4
        for child in self.children:
            size += child.serialized_size()
        self._size_cache = size
        return size

    def content_fingerprint(self) -> str:
        """Cached structural digest: tag, sorted attributes, child digests.

        Two elements with equal content (ids aside, attribute order aside)
        share a fingerprint, which is what lets structurally identical
        plans — and :class:`~repro.core.expressions.TreeExpr` literals on
        opposite sides of an :meth:`AXMLSystem.clone` — dedupe to one
        plan-cache key.  Invalidated together with the size cache.
        """
        if self._fp_cache is not None:
            return self._fp_cache
        digest = blake2b(digest_size=_FP_BYTES)
        digest.update(b"e\x00")
        digest.update(self.tag.encode("utf-8"))
        for name in sorted(self.attrs):
            digest.update(b"\x00a")
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(self.attrs[name].encode("utf-8"))
        for child in self.children:
            digest.update(b"\x00c")
            digest.update(child.content_fingerprint().encode("ascii"))
        fingerprint = digest.hexdigest()
        self._fp_cache = fingerprint
        return fingerprint

    def __repr__(self) -> str:
        ident = f" id={self.node_id}" if self.node_id else ""
        return f"Element(<{self.tag}>{ident} children={len(self.children)})"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def element(
    tag: str,
    *children: Union[Node, str],
    attrs: Optional[Dict[str, str]] = None,
) -> Element:
    """Build an :class:`Element`; bare strings become :class:`Text` children.

    >>> e = element("a", element("b", "hi"), attrs={"x": "1"})
    >>> e.tag, e.attrs["x"], e.element_children[0].string_value()
    ('a', '1', 'hi')
    """
    node = Element(tag, attrs=attrs)
    for child in children:
        node.append(Text(child) if isinstance(child, str) else child)
    return node


def text(value: str) -> Text:
    """Build a :class:`Text` node."""
    return Text(value)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def iter_nodes(root: Node) -> Iterator[Node]:
    """Pre-order traversal over all nodes (elements and text)."""
    stack: List[Node] = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Element):
            stack.extend(reversed(node.children))


def iter_elements(root: Node) -> Iterator[Element]:
    """Pre-order traversal over element nodes only."""
    for node in iter_nodes(root):
        if isinstance(node, Element):
            yield node


def tree_size(root: Node) -> int:
    """Total node count of the subtree (elements + text leaves)."""
    return sum(1 for _ in iter_nodes(root))


def find_by_id(root: Node, node_id: NodeId) -> Optional[Element]:
    """Locate the element with ``node_id`` in ``root``, or ``None``."""
    for node in iter_elements(root):
        if node.node_id == node_id:
            return node
    return None


def find_first(root: Node, predicate: Callable[[Element], bool]) -> Optional[Element]:
    """First element (pre-order) satisfying ``predicate``, or ``None``."""
    for node in iter_elements(root):
        if predicate(node):
            return node
    return None
