"""Canonical forms and unordered-tree equivalence.

Section 2.1 of the paper models XML trees as *unordered*; Section 2.3
defines document equivalence (≡) as equality of the trees' eventual
fixpoints under service-call activation.  Structural equivalence of
fully-materialized trees — what this module computes — is the decidable
core used everywhere in the reproduction:

* rewrite-rule verification compares post-state documents with
  :func:`equivalent`;
* the generic-document registry groups replicas by :func:`canonical_form`;
* tests assert parser/serializer round trips modulo child order.

The canonical form of a tree is a nested tuple in which children are
sorted by their own canonical forms, so two trees are unordered-equal iff
their canonical forms compare equal.  Node identifiers are excluded: two
replicas of the same content on different peers are equivalent even though
their nodes carry different ids.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

from .model import Element, Node, Text

__all__ = ["canonical_form", "canonical_hash", "equivalent", "ordered_equal"]

CanonForm = Union[Tuple, str]


def canonical_form(node: Node, strip_whitespace: bool = True) -> CanonForm:
    """Nested-tuple canonical form; children sorted, ids ignored.

    ``strip_whitespace`` drops whitespace-only text nodes and trims others,
    matching the data-centric view the paper takes of XML (indentation is
    not content).
    """
    if isinstance(node, Text):
        value = node.value.strip() if strip_whitespace else node.value
        return ("#text", value)
    assert isinstance(node, Element)
    # Normalize adjacent text siblings into one run first: the XDM has no
    # adjacent text nodes, and serialization merges them, so canonical
    # forms must too (a parse/serialize round trip would otherwise change
    # the form).
    merged: list = []
    for child in node.children:
        if isinstance(child, Text) and merged and isinstance(merged[-1], Text):
            merged[-1] = Text(merged[-1].value + child.value)
        else:
            merged.append(child)
    child_forms = []
    for child in merged:
        if strip_whitespace and isinstance(child, Text) and not child.value.strip():
            continue
        child_forms.append(canonical_form(child, strip_whitespace))
    child_forms.sort(key=repr)
    attr_items = tuple(sorted(node.attrs.items()))
    return (node.tag, attr_items, tuple(child_forms))


def canonical_hash(node: Node, strip_whitespace: bool = True) -> str:
    """Stable hex digest of the canonical form (for registries, caches)."""
    digest = hashlib.sha256(repr(canonical_form(node, strip_whitespace)).encode())
    return digest.hexdigest()


def equivalent(a: Node, b: Node, strip_whitespace: bool = True) -> bool:
    """Unordered structural equivalence (the decidable core of ≡)."""
    return canonical_form(a, strip_whitespace) == canonical_form(b, strip_whitespace)


def ordered_equal(a: Node, b: Node) -> bool:
    """Strict ordered equality including child order (ids still ignored).

    Used where document order matters, e.g. checking XQuery results.
    """
    if isinstance(a, Text) or isinstance(b, Text):
        return isinstance(a, Text) and isinstance(b, Text) and a.value == b.value
    assert isinstance(a, Element) and isinstance(b, Element)
    if a.tag != b.tag or a.attrs != b.attrs:
        return False
    if len(a.children) != len(b.children):
        return False
    return all(
        ordered_equal(ca, cb) for ca, cb in zip(a.children, b.children)
    )
