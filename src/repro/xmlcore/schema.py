"""Schema-lite: the type system Θ of the paper, reduced to what it uses.

Section 2.1 assumes a set Θ of XML tree types "as expressed for instance in
XML Schema", used solely as service signatures ``(τ_in, τ_out)``.  We
implement a structural subset sufficient for signature checking:

* :class:`ElementType` — a root tag plus a content model;
* content models: :class:`Sequence`, :class:`Choice`, :class:`Interleave`
  (XML-Schema ``all``), :class:`Occurs` (min/max occurrence bounds),
  :class:`Ref` (named re-use, enabling recursion), :class:`TextType`,
  :class:`AnyType` (wildcard, the default for untyped services);
* a :class:`Schema` holding named types, with ``validate(tree, type)``.

Validation is a backtracking matcher over the child sequence — exponential
worst cases are possible with pathological choices but irrelevant at the
sizes signatures have.  Because the paper's trees are unordered,
:class:`Sequence` here means "these particles, in any order" when the
schema is constructed with ``ordered=False`` (the default matches ordered
XML semantics, which is what serialized messages use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence as Seq, Tuple

from ..errors import SchemaError, ValidationError
from .model import Element, Node, Text

__all__ = [
    "ContentModel",
    "TextType",
    "AnyType",
    "ElementType",
    "Sequence",
    "Choice",
    "Interleave",
    "Occurs",
    "Ref",
    "Schema",
    "Signature",
    "EMPTY",
    "ANY",
]

UNBOUNDED = -1


class ContentModel:
    """Abstract content-model particle."""

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        """Yield every position reachable by matching this particle at ``pos``."""
        raise NotImplementedError


@dataclass(frozen=True)
class TextType(ContentModel):
    """Matches exactly one text node (any character data)."""

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        if pos < len(nodes) and isinstance(nodes[pos], Text):
            yield pos + 1


@dataclass(frozen=True)
class AnyType(ContentModel):
    """Matches any single node (element or text) — the wildcard τ."""

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        if pos < len(nodes):
            yield pos + 1


@dataclass(frozen=True)
class ElementType(ContentModel):
    """Matches one element with tag ``tag`` whose content matches ``content``.

    ``content=None`` means any content; required attributes can be listed.
    """

    tag: str
    content: Optional[ContentModel] = None
    required_attrs: Tuple[str, ...] = ()

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        if pos >= len(nodes):
            return
        node = nodes[pos]
        if not isinstance(node, Element) or node.tag != self.tag:
            return
        for attr in self.required_attrs:
            if attr not in node.attrs:
                return
        if self.content is not None and not schema._content_matches(
            node.children, self.content
        ):
            return
        yield pos + 1


@dataclass(frozen=True)
class Sequence(ContentModel):
    """All particles, in order."""

    particles: Tuple[ContentModel, ...]

    def __init__(self, *particles: ContentModel) -> None:
        object.__setattr__(self, "particles", tuple(particles))

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        frontier = {pos}
        for particle in self.particles:
            next_frontier = set()
            for p in frontier:
                next_frontier.update(particle._match(nodes, p, schema))
            if not next_frontier:
                return
            frontier = next_frontier
        yield from frontier


@dataclass(frozen=True)
class Choice(ContentModel):
    """Exactly one of the alternatives."""

    alternatives: Tuple[ContentModel, ...]

    def __init__(self, *alternatives: ContentModel) -> None:
        object.__setattr__(self, "alternatives", tuple(alternatives))

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        seen = set()
        for alternative in self.alternatives:
            for end in alternative._match(nodes, pos, schema):
                if end not in seen:
                    seen.add(end)
                    yield end


@dataclass(frozen=True)
class Interleave(ContentModel):
    """All particles, in any order (XML-Schema ``all``; unordered trees)."""

    particles: Tuple[ContentModel, ...]

    def __init__(self, *particles: ContentModel) -> None:
        object.__setattr__(self, "particles", tuple(particles))

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        yield from self._match_remaining(nodes, pos, schema, frozenset(range(len(self.particles))))

    def _match_remaining(
        self, nodes: Seq[Node], pos: int, schema: "Schema", remaining: frozenset
    ) -> Iterable[int]:
        if not remaining:
            yield pos
            return
        seen = set()
        for index in remaining:
            for mid in self.particles[index]._match(nodes, pos, schema):
                for end in self._match_remaining(
                    nodes, mid, schema, remaining - {index}
                ):
                    if end not in seen:
                        seen.add(end)
                        yield end


@dataclass(frozen=True)
class Occurs(ContentModel):
    """Occurrence bounds: ``particle`` repeated min..max times.

    ``max=UNBOUNDED`` (−1) means unbounded, i.e. ``*`` when ``min=0`` and
    ``+`` when ``min=1``; ``min=0, max=1`` is ``?``.
    """

    particle: ContentModel
    min: int = 0
    max: int = UNBOUNDED

    def __post_init__(self) -> None:
        if self.min < 0:
            raise SchemaError("Occurs.min must be >= 0")
        if self.max != UNBOUNDED and self.max < self.min:
            raise SchemaError("Occurs.max must be >= min (or UNBOUNDED)")

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        seen = set()
        frontier = {pos}
        count = 0
        if self.min == 0:
            seen.add(pos)
            yield pos
        while frontier:
            next_frontier = set()
            for p in frontier:
                for end in self.particle._match(nodes, p, schema):
                    if end not in next_frontier and end > p:
                        next_frontier.add(end)
            count += 1
            if self.max != UNBOUNDED and count > self.max:
                return
            for end in next_frontier:
                if count >= self.min and end not in seen:
                    seen.add(end)
                    yield end
            frontier = next_frontier


@dataclass(frozen=True)
class Ref(ContentModel):
    """Reference to a named type in the enclosing :class:`Schema`."""

    name: str

    def _match(self, nodes: Seq[Node], pos: int, schema: "Schema") -> Iterable[int]:
        yield from schema.resolve(self.name)._match(nodes, pos, schema)


EMPTY = Sequence()
ANY = Occurs(AnyType(), 0, UNBOUNDED)


class Schema:
    """A collection of named types with validation.

    >>> s = Schema()
    >>> s.define("item", ElementType("item", Sequence(ElementType("name"),
    ...                                               ElementType("price"))))
    >>> from .model import element
    >>> s.is_valid(element("item", element("name"), element("price")), "item")
    True
    """

    def __init__(self) -> None:
        self._types: Dict[str, ContentModel] = {}

    def define(self, name: str, model: ContentModel) -> ContentModel:
        if name in self._types:
            raise SchemaError(f"type {name!r} already defined")
        self._types[name] = model
        return model

    def resolve(self, name: str) -> ContentModel:
        try:
            return self._types[name]
        except KeyError:
            raise SchemaError(f"unknown type {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._types)

    # -- validation ---------------------------------------------------------
    def _content_matches(self, nodes: Seq[Node], model: ContentModel) -> bool:
        meaningful = [
            n for n in nodes
            if not (isinstance(n, Text) and not n.value.strip())
        ]
        return any(
            end == len(meaningful) for end in model._match(meaningful, 0, self)
        )

    def is_valid(self, tree: Node, type_name: str) -> bool:
        """True iff ``tree`` (as a one-node forest) matches the named type."""
        return self._content_matches([tree], Ref(type_name))

    def validate(self, tree: Node, type_name: str) -> None:
        """Raise :class:`ValidationError` unless ``tree`` matches the type."""
        if not self.is_valid(tree, type_name):
            label = tree.tag if isinstance(tree, Element) else "#text"
            raise ValidationError(
                f"tree rooted at <{label}> does not conform to type {type_name!r}"
            )


@dataclass(frozen=True)
class Signature:
    """Service type signature ``(τ_in, τ_out)`` with input arity n.

    ``inputs`` is a tuple of type names (length = service arity) and
    ``output`` a single type name, both resolved against ``schema``.  A
    ``None`` schema means the untyped wildcard signature — the common case
    for ad-hoc declarative services.
    """

    inputs: Tuple[str, ...] = ()
    output: str = "any"
    schema: Optional[Schema] = None

    @property
    def arity(self) -> int:
        return len(self.inputs)

    def check_inputs(self, params: Seq[Node]) -> None:
        """Validate an argument forest against τ_in; no-op when untyped."""
        if self.schema is None:
            return
        if len(params) != len(self.inputs):
            raise ValidationError(
                f"expected {len(self.inputs)} parameters, got {len(params)}"
            )
        for param, type_name in zip(params, self.inputs):
            self.schema.validate(param, type_name)

    def check_output(self, result: Node) -> None:
        """Validate one response tree against τ_out; no-op when untyped."""
        if self.schema is None:
            return
        self.schema.validate(result, self.output)
