"""Node-targeted write operations over distributed documents.

The paper's framework assumes documents evolve — service calls
materialize results into the tree — so the system needs first-class
mutations, not just reads.  An operation addresses the *logical*
document by name and an item by its **ordinal**: the position of the
item in the original root's child list, exactly the coordinate the
fragment catalog records as ``[lo, hi)`` slices.  That makes routing a
pure catalog lookup: the fragment whose ordinal range contains the
target owns the write.

Three shapes cover the workloads:

* :class:`InsertOp` — splice a new item subtree in at an ordinal
  (``None`` appends after the last item);
* :class:`UpdateOp` — replace (or add) one scalar child field of the
  addressed item, e.g. re-price ``item[7]``'s ``<price>``;
* :class:`DeleteOp` — remove the addressed item.

All three are frozen values: the :class:`~repro.writes.DocumentWriter`
applies them, it never mutates them.  :class:`WriteResult` reports what
a write actually did — which fragment owned it, which peer was the
primary, where replica deltas shipped, when the last copy settled on
the virtual clock, and every name whose epoch was bumped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..xmlcore.model import Element

__all__ = ["InsertOp", "UpdateOp", "DeleteOp", "WriteOp", "WriteResult"]


@dataclass(frozen=True)
class InsertOp:
    """Insert ``item`` so it becomes child ``ordinal`` of the root.

    ``ordinal=None`` appends after the current last item.  The item tree
    is copied (ids cleared) into every target copy, so the caller's
    instance is never aliased into Σ.
    """

    doc: str
    item: Element
    ordinal: Optional[int] = None


@dataclass(frozen=True)
class UpdateOp:
    """Set the addressed item's ``<tag>`` child to a new text ``value``.

    The first child element named ``tag`` is replaced with a fresh
    ``<tag>value</tag>``; when the item has no such child, one is
    appended — an upsert, matching how service results materialize
    fields into items.
    """

    doc: str
    ordinal: int
    tag: str
    value: str


@dataclass(frozen=True)
class DeleteOp:
    """Remove the item at ``ordinal`` from the document."""

    doc: str
    ordinal: int


WriteOp = Union[InsertOp, UpdateOp, DeleteOp]


@dataclass(frozen=True)
class WriteResult:
    """What one applied write did, for reports and tests."""

    #: Logical document the operation addressed.
    doc: str
    #: ``"insert"`` / ``"update"`` / ``"delete"``.
    kind: str
    #: Absolute ordinal acted on (appends are resolved to a number).
    ordinal: int
    #: Owning fragment name, or ``None`` for an unfragmented document.
    fragment: Optional[str]
    #: Peer the write landed on first (catalog home, or the surviving
    #: copy after failover).
    primary: str
    #: Peers a coherence delta shipped to (replicas and mirrors).
    replicas: Tuple[str, ...]
    #: Every name whose epoch was bumped (doc, fragment, mirrors,
    #: generic classes), sorted.
    touched: Tuple[str, ...]
    #: Virtual time at which the slowest coherence ship arrived; reads
    #: from any copy at or after this instant see the write.
    settled_at: float
    #: The logical document's epoch after this write.
    epoch: int

    def describe(self) -> str:
        where = self.fragment or self.doc
        reps = f" -> {', '.join(self.replicas)}" if self.replicas else ""
        return (
            f"{self.kind} {self.doc}[{self.ordinal}] on {where}@{self.primary}"
            f"{reps} (settled t={self.settled_at:.6f}, epoch {self.epoch})"
        )
