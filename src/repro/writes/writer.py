"""The write path: route a mutation to its owning copies, keep Σ coherent.

:class:`DocumentWriter` applies one :mod:`op <repro.writes.ops>` to a
live system under **primary-copy** coherence:

* the catalog's ordinal ranges name the owning fragment; the write lands
  on the fragment's home (or, when the home is dead, fails over to the
  first surviving copy — a last-copy loss raises the typed
  :class:`~repro.errors.FragmentUnavailableError`, never a ``KeyError``);
* every other live copy — fragment replicas, the whole-document baseline
  kept at the home, generic-class mirrors — receives the same edit as a
  *delta* shipped over the simulated network, so coherence is charged on
  the virtual clock like any other traffic; :attr:`WriteResult.settled_at
  <repro.writes.ops.WriteResult.settled_at>` is when the slowest ship
  arrived and reads from any copy are consistent again;
* the owning fragment's catalog entry is re-derived in place — new count,
  shifted ordinal ranges downstream, refreshed per-tag ``(min, max)``
  stats — so fragment-prune stays sound against the mutated content;
* finally every name the write made observable through gets its
  **epoch** bumped (:meth:`AXMLSystem.bump_doc_epoch`), which is the
  whole cache-invalidation story: plan/cost memo keys fold non-zero
  epochs in (:func:`repro.core.planspace.doc_epoch_signature`), so stale
  entries stop matching while entries for untouched documents survive.

:func:`apply_to_tree` is the single-tree edit primitive both the writer
and the rebuild-from-scratch baseline (differential harness, bench) use,
so "incremental" and "rebuild" can only differ in *distribution*
machinery, never in edit semantics.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Set

from ..dist.fragmenter import _numeric_stats
from ..errors import (
    FragmentUnavailableError,
    PeerDownError,
    UnknownDocumentError,
    WriteError,
)
from ..net.message import Message, MessageKind
from ..peers.system import AXMLSystem
from ..xmlcore.model import Element, element
from ..xmlcore.serializer import serialize
from .ops import DeleteOp, InsertOp, UpdateOp, WriteOp, WriteResult

__all__ = ["DocumentWriter", "apply_to_tree", "op_kind"]


def op_kind(op: WriteOp) -> str:
    """``"insert"`` / ``"update"`` / ``"delete"`` for a write op."""
    if isinstance(op, InsertOp):
        return "insert"
    if isinstance(op, UpdateOp):
        return "update"
    if isinstance(op, DeleteOp):
        return "delete"
    raise WriteError(f"unknown write operation {type(op).__name__}")


def apply_to_tree(root: Element, op: WriteOp, offset: int = 0) -> None:
    """Apply one op to ``root``'s child list at local index ``ordinal - offset``.

    ``offset`` is the fragment's ``lo`` ordinal (0 for whole documents),
    so the same absolute-ordinal op edits a fragment copy and the whole
    baseline identically.  Inserted items are copied id-free; updates
    build a fresh ``<tag>value</tag>`` — every copy therefore serializes
    byte-identically.  All edits go through the :class:`Element` mutation
    helpers, which invalidate the size/fingerprint caches up the ancestor
    chain.
    """
    items = root.children
    if isinstance(op, InsertOp):
        ordinal = len(items) + offset if op.ordinal is None else op.ordinal
        local = ordinal - offset
        if not 0 <= local <= len(items):
            raise WriteError(
                f"insert ordinal {ordinal} outside [{offset}, "
                f"{offset + len(items)}] for {op.doc!r}"
            )
        root.insert(local, op.item.copy_without_ids())
        return
    local = op.ordinal - offset
    if not 0 <= local < len(items):
        raise WriteError(
            f"{op_kind(op)} ordinal {op.ordinal} outside [{offset}, "
            f"{offset + len(items)}) for {op.doc!r}"
        )
    target = items[local]
    if isinstance(op, DeleteOp):
        root.remove(target)
        return
    if isinstance(op, UpdateOp):
        if not isinstance(target, Element):
            raise WriteError(
                f"update ordinal {op.ordinal} of {op.doc!r} is not an element"
            )
        fresh = element(op.tag, op.value)
        existing = target.child_by_tag(op.tag)
        if existing is None:
            target.append(fresh)
        else:
            target.replace_child(existing, fresh)
        return
    raise WriteError(f"unknown write operation {type(op).__name__}")


class DocumentWriter:
    """Applies write ops to one live Σ (see the module docstring)."""

    def __init__(self, system: AXMLSystem) -> None:
        self.system = system

    def apply(self, op: WriteOp, now: float = 0.0) -> WriteResult:
        """Route, apply, propagate, refresh stats, bump epochs."""
        op_kind(op)  # reject unknown op types before touching Σ
        if self.system.fragments.is_fragmented(op.doc):
            return self._apply_fragmented(op, now)
        return self._apply_whole(op, now)

    # -- whole documents ----------------------------------------------------
    def _apply_whole(self, op: WriteOp, now: float) -> WriteResult:
        system = self.system
        hosts = [
            pid
            for pid in sorted(system.peers)
            if system.peers[pid].has_document(op.doc)
        ]
        if not hosts:
            raise UnknownDocumentError(f"no peer hosts a document named {op.doc!r}")
        live = [pid for pid in hosts if system.peers[pid].alive]
        if not live:
            raise PeerDownError(
                f"every copy of {op.doc!r} is on a dead peer ({', '.join(hosts)})"
            )
        primary = live[0]
        tree = system.peers[primary].documents[op.doc]
        op = self._concretize(op, len(tree.children))
        apply_to_tree(tree, op)
        system.peers[primary].allocator.assign(tree)

        settled = now
        shipped: List[str] = []
        touched: Set[str] = {op.doc}
        # same-name copies on other live peers
        for pid in live[1:]:
            settled = max(settled, self._ship_delta(primary, pid, op.doc, op, now))
            peer = system.peers[pid]
            apply_to_tree(peer.documents[op.doc], op)
            peer.allocator.assign(peer.documents[op.doc])
            shipped.append(pid)
        # generic-class mirrors under other names (e.g. "d0.r1" in "g-d0")
        for generic in system.registry.document_classes(op.doc, primary):
            touched.add(generic)
            for member in system.registry.document_members(generic):
                if member.name == op.doc:
                    continue
                peer = system.peers.get(member.peer)
                if peer is None or not peer.alive or not peer.has_document(member.name):
                    continue
                settled = max(
                    settled,
                    self._ship_delta(primary, member.peer, member.name, op, now),
                )
                apply_to_tree(peer.documents[member.name], op)
                peer.allocator.assign(peer.documents[member.name])
                shipped.append(member.peer)
                touched.add(member.name)

        for name in sorted(touched):
            system.bump_doc_epoch(name)
        return WriteResult(
            doc=op.doc,
            kind=op_kind(op),
            ordinal=op.ordinal,
            fragment=None,
            primary=primary,
            replicas=tuple(shipped),
            touched=tuple(sorted(touched)),
            settled_at=settled,
            epoch=system.doc_epoch(op.doc),
        )

    # -- fragmented documents -----------------------------------------------
    def _apply_fragmented(self, op: WriteOp, now: float) -> WriteResult:
        system = self.system
        info = system.fragments.info(op.doc)
        op = self._concretize(op, info.total_items)
        owner = self._owning_fragment(info, op)
        primary = self._primary_copy(owner)

        lo, hi = owner.ordinals
        primary_peer = system.peers[primary]
        primary_tree = primary_peer.documents[owner.name]
        apply_to_tree(primary_tree, op, offset=lo)
        primary_peer.allocator.assign(primary_tree)

        settled = now
        shipped: List[str] = []
        # replica copies of the owning fragment
        for pid in owner.peers:
            if pid == primary:
                continue
            peer = system.peers.get(pid)
            if peer is None or not peer.alive or not peer.has_document(owner.name):
                continue
            settled = max(settled, self._ship_delta(primary, pid, owner.name, op, now))
            apply_to_tree(peer.documents[owner.name], op, offset=lo)
            peer.allocator.assign(peer.documents[owner.name])
            shipped.append(pid)
        # whole-document baselines kept alongside the fragments
        # (Fragmenter's keep_original) edit at the absolute ordinal
        for pid in sorted(system.peers):
            peer = system.peers[pid]
            if not peer.alive or not peer.has_document(op.doc):
                continue
            if pid != primary:
                settled = max(settled, self._ship_delta(primary, pid, op.doc, op, now))
                shipped.append(pid)
            apply_to_tree(peer.documents[op.doc], op)
            peer.allocator.assign(peer.documents[op.doc])

        self._refresh_catalog(info, owner, op, primary_tree)

        touched = {op.doc, owner.name}
        if owner.generic:
            touched.add(owner.generic)
        for name in sorted(touched):
            system.bump_doc_epoch(name)
        return WriteResult(
            doc=op.doc,
            kind=op_kind(op),
            ordinal=op.ordinal,
            fragment=owner.name,
            primary=primary,
            replicas=tuple(shipped),
            touched=tuple(sorted(touched)),
            settled_at=settled,
            epoch=system.doc_epoch(op.doc),
        )

    # -- routing helpers ----------------------------------------------------
    @staticmethod
    def _concretize(op: WriteOp, total: int) -> WriteOp:
        """Resolve append-inserts to a number, bounds-check the ordinal."""
        if isinstance(op, InsertOp):
            ordinal = total if op.ordinal is None else op.ordinal
            if not 0 <= ordinal <= total:
                raise WriteError(
                    f"insert ordinal {ordinal} outside [0, {total}] for {op.doc!r}"
                )
            return replace(op, ordinal=ordinal)
        if not 0 <= op.ordinal < total:
            raise WriteError(
                f"{op_kind(op)} ordinal {op.ordinal} outside [0, {total}) "
                f"for {op.doc!r}"
            )
        return op

    @staticmethod
    def _owning_fragment(info, op: WriteOp):
        """The fragment whose ``[lo, hi)`` range contains the ordinal.

        An insert at ``total`` (append) falls past every range and lands
        in the last fragment.
        """
        for fragment in info.fragments:
            lo, hi = fragment.ordinals
            if lo <= op.ordinal < hi:
                return fragment
        if isinstance(op, InsertOp) and info.fragments:
            return info.fragments[-1]
        raise WriteError(
            f"ordinal {op.ordinal} not covered by any fragment of {op.doc!r}"
        )

    def _primary_copy(self, fragment) -> str:
        """First live peer holding the fragment, catalog home first.

        The catalog may still name a dead home (churn failover runs
        asynchronously); the write simply lands on the first surviving
        copy.  No copy left -> the typed unavailability error.
        """
        for pid in fragment.peers:
            peer = self.system.peers.get(pid)
            if peer is not None and peer.alive and peer.has_document(fragment.name):
                return pid
        raise FragmentUnavailableError(fragment.name, fragment.peers)

    def _ship_delta(
        self, src: str, dst: str, doc: str, op: WriteOp, now: float
    ) -> float:
        """Charge one coherence delta on the network; returns arrival time."""
        if src == dst:
            return now
        message = Message(
            src=src,
            dst=dst,
            kind=MessageKind.DATA,
            payload=self._delta_payload(op),
            headers={"doc": doc, "write": op_kind(op)},
        )
        return self.system.network.deliver(message, now)

    @staticmethod
    def _delta_payload(op: WriteOp) -> str:
        if isinstance(op, InsertOp):
            return f"{op.ordinal}:{serialize(op.item)}"
        if isinstance(op, UpdateOp):
            return f"{op.ordinal}:{op.tag}={op.value}"
        return f"{op.ordinal}"

    # -- catalog maintenance ------------------------------------------------
    def _refresh_catalog(self, info, owner, op: WriteOp, primary_tree) -> None:
        """Re-derive the owning fragment's entry; shift downstream ranges.

        Atomic swap via ``register(replace_existing=True)`` — readers see
        either the old coherent entry or the new one.  Stats come from
        the primary's post-write items, so fragment-prune keeps its
        invariant: a pruned fragment provably holds no matching item.
        """
        delta = {"insert": 1, "update": 0, "delete": -1}[op_kind(op)]
        lo, hi = owner.ordinals
        fragments = []
        for fragment in info.fragments:
            if fragment.index == owner.index:
                items = [
                    child
                    for child in primary_tree.children
                    if isinstance(child, Element)
                ]
                fragment = replace(
                    fragment,
                    count=fragment.count + delta,
                    ordinals=(lo, hi + delta),
                    stats=_numeric_stats(items),
                )
            elif delta and fragment.index > owner.index:
                flo, fhi = fragment.ordinals
                fragment = replace(fragment, ordinals=(flo + delta, fhi + delta))
            fragments.append(fragment)
        self.system.fragments.register(
            replace(info, fragments=tuple(fragments)), replace_existing=True
        )
