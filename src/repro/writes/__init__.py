"""repro.writes — mutable distributed documents.

Node-targeted inserts/updates/deletes addressed by (document, ordinal),
routed to the owning fragment through the catalog's ordinal ranges and
applied under primary-copy replica coherence.  See
:mod:`repro.writes.ops` for the operation shapes and
:mod:`repro.writes.writer` for the routing/coherence/invalidation
machinery.  The high-level entry point is
:meth:`Session.write <repro.session.Session.write>`.
"""

from .ops import DeleteOp, InsertOp, UpdateOp, WriteOp, WriteResult
from .writer import DocumentWriter, apply_to_tree, op_kind

__all__ = [
    "InsertOp",
    "UpdateOp",
    "DeleteOp",
    "WriteOp",
    "WriteResult",
    "DocumentWriter",
    "apply_to_tree",
    "op_kind",
]
