"""The fragment catalog: where the pieces of a fragmented document live.

Horizontal fragmentation (the ROADMAP's first scaling direction) splits a
document's repeated children into per-peer *fragments*.  The catalog is
the Σ-level metadata making that split queryable:

* :class:`FragmentInfo` — one fragment: its concrete document name, the
  primary hosting peer, any replica peers, the ordinal slice of the
  original child list it covers, and per-tag numeric ``(min, max)``
  statistics the optimizer's pruning rule reads;
* :class:`FragmentedDocInfo` — one logical document: its root tag and
  attributes (needed to reassemble the whole tree byte-identically) plus
  the ordered fragment list;
* :class:`FragmentCatalog` — the registry hung off
  :attr:`AXMLSystem.fragments <repro.peers.system.AXMLSystem.fragments>`.

Like the generic registry, the catalog is logically replicated on every
peer with zero lookup cost; only the *data* transfers that follow a
lookup are charged.  Entries are immutable, so
:meth:`FragmentCatalog.copy` (used by ``AXMLSystem.clone()``) yields a
fully independent catalog without deep-copying trees — the fragment
*documents* themselves are cloned with the peers that host them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import FragmentationError

__all__ = ["FragmentInfo", "FragmentedDocInfo", "FragmentCatalog"]


@dataclass(frozen=True)
class FragmentInfo:
    """One horizontal fragment of a logical document."""

    #: Logical document this fragment belongs to.
    doc: str
    #: Position of the fragment in the reassembly order.
    index: int
    #: Concrete document name hosting the slice (e.g. ``"cat.f0"``).
    name: str
    #: Primary hosting peer.
    home: str
    #: Peers holding byte-identical replicas of the fragment.
    replicas: Tuple[str, ...] = ()
    #: Number of items (root children) in the fragment.
    count: int = 0
    #: ``[lo, hi)`` slice of the original root's child list.
    ordinals: Tuple[int, int] = (0, 0)
    #: Per-tag numeric ``(min, max)`` over the fragment's items, as a
    #: sorted tuple of pairs so the info stays hashable.  The pruning
    #: rewrite treats these as invariants: a fragment whose range cannot
    #: satisfy a pushed selection is never contacted.
    stats: Tuple[Tuple[str, Tuple[float, float]], ...] = ()
    #: Generic-registry class name when the fragment is replicated
    #: (resolved through pick policies, e.g. queue-depth admission).
    generic: Optional[str] = None

    @property
    def peers(self) -> Tuple[str, ...]:
        """Every peer holding a copy, primary first."""
        return (self.home,) + self.replicas

    def bounds(self, tag: str) -> Optional[Tuple[float, float]]:
        """The fragment's ``(min, max)`` for a numeric child tag, if known."""
        for name, pair in self.stats:
            if name == tag:
                return pair
        return None

    def describe(self) -> str:
        lo, hi = self.ordinals
        reps = f" +{len(self.replicas)} replicas" if self.replicas else ""
        return f"{self.name}@{self.home} items[{lo}:{hi}]{reps}"


@dataclass(frozen=True)
class FragmentedDocInfo:
    """Catalog entry for one logical document."""

    doc: str
    root_tag: str
    #: Root attributes, sorted, so reassembly reproduces the original root.
    root_attrs: Tuple[Tuple[str, str], ...] = ()
    fragments: Tuple[FragmentInfo, ...] = ()

    @property
    def total_items(self) -> int:
        return sum(fragment.count for fragment in self.fragments)

    def describe(self) -> str:
        parts = ", ".join(f.describe() for f in self.fragments)
        return f"{self.doc} = <{self.root_tag}> over [{parts}]"


class FragmentCatalog:
    """Registry of fragmented logical documents on one Σ.

    The catalog maps logical names to :class:`FragmentedDocInfo`.  A
    logical name may coexist with a whole-document replica of the same
    name (useful as a migration baseline); the ``@dist`` binding form
    selects the fragmented view explicitly.
    """

    def __init__(self) -> None:
        self._docs: Dict[str, FragmentedDocInfo] = {}

    # -- registration ----------------------------------------------------------
    def register(self, info: FragmentedDocInfo, replace_existing: bool = False) -> None:
        if info.doc in self._docs and not replace_existing:
            raise FragmentationError(
                f"document {info.doc!r} already has a fragment catalog entry"
            )
        if not info.fragments:
            raise FragmentationError(
                f"catalog entry for {info.doc!r} needs at least one fragment"
            )
        self._docs[info.doc] = info

    def drop(self, doc: str) -> None:
        self._docs.pop(doc, None)

    # -- lookup ----------------------------------------------------------------
    def is_fragmented(self, doc: str) -> bool:
        return doc in self._docs

    def info(self, doc: str) -> FragmentedDocInfo:
        try:
            return self._docs[doc]
        except KeyError:
            raise FragmentationError(
                f"document {doc!r} has no fragment catalog entry"
            ) from None

    def fragments(self, doc: str) -> Tuple[FragmentInfo, ...]:
        return self.info(doc).fragments

    def documents(self) -> List[str]:
        return sorted(self._docs)

    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[FragmentedDocInfo]:
        for doc in sorted(self._docs):
            yield self._docs[doc]

    # -- lifecycle -------------------------------------------------------------
    def copy(self) -> "FragmentCatalog":
        """An independent catalog with the same entries.

        Entries are immutable, so sharing them is safe; registering or
        dropping on either side never shows through to the other —
        exactly the independence ``AXMLSystem.clone()`` promises.
        """
        twin = FragmentCatalog()
        twin._docs = dict(self._docs)
        return twin

    def describe(self) -> str:
        if not self._docs:
            return "fragment catalog: empty"
        lines = [f"fragment catalog: {len(self._docs)} documents"]
        for info in self:
            lines.append("  " + info.describe())
        return "\n".join(lines)
