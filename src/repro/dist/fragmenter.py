"""Horizontal fragmentation of documents across peers.

:class:`Fragmenter` splits a document's repeated root children into
contiguous per-peer fragments, installs each fragment as a regular
document on its hosting peer, optionally mirrors fragments onto replica
peers (registered as generic classes so pick policies — including the
serving engine's queue-depth admission — choose among them at evaluation
time), and records the whole layout in the system's
:class:`~repro.dist.catalog.FragmentCatalog`.

The split is purely structural: fragment ``i`` holds the ordinal slice
``[lo, hi)`` of the original child list, so concatenating the fragments
in index order reproduces the original document byte-identically — the
invariant the scatter-gather evaluator and the differential harness
lean on.  Per-fragment numeric ``(min, max)`` statistics are computed at
split time and become the pruning rewrite's metadata.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..errors import FragmentationError
from ..xmlcore.model import Element
from .catalog import FragmentCatalog, FragmentInfo, FragmentedDocInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..peers.system import AXMLSystem

__all__ = ["Fragmenter"]


class Fragmenter:
    """Splits documents into per-peer fragments under the system catalog."""

    def __init__(self, system: "AXMLSystem") -> None:
        self.system = system

    def fragment(
        self,
        doc: str,
        home: str,
        across: Sequence[str],
        *,
        replicas: int = 0,
        keep_original: bool = True,
    ) -> FragmentedDocInfo:
        """Fragment ``doc@home`` horizontally across the ``across`` peers.

        Parameters
        ----------
        doc / home:
            The whole document to split (must exist on ``home``).
        across:
            Hosting peers, one fragment each, in reassembly order.  Peers
            may repeat; ``home`` itself is allowed.
        replicas:
            Mirror each fragment onto this many *additional* peers (drawn
            round-robin from ``across``), registering the fragment name
            as a generic class so evaluation picks a replica through the
            session's pick policy.
        keep_original:
            Keep the whole document installed at ``home`` (the default —
            it doubles as the unfragmented baseline the differential
            harness compares against).  Pass ``False`` to reclaim it.
        """
        targets = list(across)
        if not targets:
            raise FragmentationError(
                f"cannot fragment {doc!r} across zero peers"
            )
        if self.catalog.is_fragmented(doc):
            raise FragmentationError(
                f"document {doc!r} is already fragmented"
            )
        for peer_id in targets:
            self.system.peer(peer_id)  # fail fast on unknown peers
        tree = self.system.peer(home).document(doc)
        items = list(tree.children)
        if any(not isinstance(item, Element) for item in items):
            raise FragmentationError(
                f"document {doc!r} has non-element root children; "
                "horizontal fragmentation needs a repeated-element root"
            )
        if len(items) < len(targets):
            raise FragmentationError(
                f"document {doc!r} has {len(items)} items, fewer than the "
                f"{len(targets)} requested fragments"
            )
        if replicas > len(targets) - 1 and replicas > len(self.system.peers) - 1:
            raise FragmentationError(
                f"cannot place {replicas} replicas of each fragment with "
                f"only {len(targets)} fragment peers"
            )

        fragments: List[FragmentInfo] = []
        lo = 0
        base, extra = divmod(len(items), len(targets))
        for index, target in enumerate(targets):
            hi = lo + base + (1 if index < extra else 0)
            slice_items = items[lo:hi]
            name = f"{doc}.f{index}"
            root = Element(tree.tag, attrs=dict(tree.attrs))
            for item in slice_items:
                root.append(item.copy_without_ids())
            self.system.peer(target).install_document(name, root)
            replica_peers = self._place_replicas(target, targets, replicas)
            for mirror in replica_peers:
                mirror_root = Element(tree.tag, attrs=dict(tree.attrs))
                for item in slice_items:
                    mirror_root.append(item.copy_without_ids())
                self.system.peer(mirror).install_document(name, mirror_root)
            generic: Optional[str] = None
            if replica_peers:
                generic = name
                self.system.registry.register_document(generic, name, target)
                for mirror in replica_peers:
                    self.system.registry.register_document(generic, name, mirror)
            fragments.append(
                FragmentInfo(
                    doc=doc,
                    index=index,
                    name=name,
                    home=target,
                    replicas=tuple(replica_peers),
                    count=len(slice_items),
                    ordinals=(lo, hi),
                    stats=_numeric_stats(slice_items),
                    generic=generic,
                )
            )
            lo = hi

        info = FragmentedDocInfo(
            doc=doc,
            root_tag=tree.tag,
            root_attrs=tuple(sorted(tree.attrs.items())),
            fragments=tuple(fragments),
        )
        self.catalog.register(info)
        if not keep_original:
            self.system.peer(home).drop_document(doc)
        return info

    @property
    def catalog(self) -> FragmentCatalog:
        return self.system.fragments

    def _place_replicas(
        self, primary: str, targets: Sequence[str], replicas: int
    ) -> List[str]:
        """Round-robin replica placement over the other fragment peers.

        Deterministic by construction (no randomness), so the same
        fragmentation call always yields the same layout — the property
        generated-workload determinism rides on.
        """
        if replicas <= 0:
            return []
        pool = [p for p in dict.fromkeys(targets) if p != primary]
        if len(pool) < replicas:
            extra = [
                p for p in sorted(self.system.peers)
                if p != primary and p not in pool
            ]
            pool.extend(extra)
        if len(pool) < replicas:
            raise FragmentationError(
                f"not enough peers to place {replicas} replicas of a "
                f"fragment primary-hosted on {primary!r}"
            )
        start = list(dict.fromkeys(targets)).index(primary) if primary in targets else 0
        rotated = pool[start % len(pool):] + pool[:start % len(pool)]
        return rotated[:replicas]


def _numeric_stats(
    items: Sequence[Element],
) -> Tuple[Tuple[str, Tuple[float, float]], ...]:
    """Per-tag ``(min, max)`` over numeric child values of the items.

    A tag counts as numeric only when *every* occurrence parses as a
    *finite* number — a partially numeric tag cannot support sound
    pruning, and ``nan``/``inf`` would poison the min/max comparisons
    ``fragment_can_match`` relies on.
    """
    ranges: Dict[str, Tuple[float, float]] = {}
    poisoned: set = set()
    for item in items:
        for child in item.element_children:
            tag = child.tag
            if tag in poisoned:
                continue
            try:
                value = float(child.string_value().strip())
            except ValueError:
                value = float("nan")
            if not math.isfinite(value):
                poisoned.add(tag)
                ranges.pop(tag, None)
                continue
            lo, hi = ranges.get(tag, (value, value))
            ranges[tag] = (min(lo, value), max(hi, value))
    return tuple(sorted(ranges.items()))
