"""Predicate analysis for fragment pruning.

The pruning rewrite needs to know, statically, whether a fragment *can*
contain an item satisfying a pushed selection.  This module extracts the
simple comparison shape the workload queries use —

    for $x in $d//item where $x/tag OP number return ...

— as ``(tag, op, number)`` bounds, and decides satisfiability against a
fragment's recorded ``(min, max)`` range for that tag.  Anything the
analysis does not understand returns ``None`` / ``True``: pruning is an
*optimization* and must stay conservative, never dropping a fragment it
cannot prove empty.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..xquery import Query
from ..xquery.ast import (
    ComparisonOp,
    FLWORExpr,
    ForClause,
    Literal,
    NameTest,
    PathExpr,
    Step,
    VarRef,
)
from .catalog import FragmentInfo

__all__ = ["selection_bounds", "fragment_can_match"]

#: Comparison spellings normalized to the general-comparison operator.
_OP_ALIASES = {
    "eq": "=", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def selection_bounds(query: Query) -> Optional[Tuple[str, str, float]]:
    """``(tag, op, value)`` of a pushable single-comparison selection.

    Matches a FLWOR whose first clause is ``for $x in ...`` and whose
    ``where`` is a single comparison between ``$x/tag`` (one child step)
    and a numeric literal, in either operand order.  Returns ``None``
    for every other shape.
    """
    body = query.module.body
    if not isinstance(body, FLWORExpr) or body.where is None:
        return None
    if not body.clauses or not isinstance(body.clauses[0], ForClause):
        return None
    var = body.clauses[0].variable
    where = body.where
    if not isinstance(where, ComparisonOp):
        return None
    op = _OP_ALIASES.get(where.op, where.op)
    if op not in _FLIPPED:
        return None
    tag = _child_tag_of(where.left, var)
    value = _numeric_literal(where.right)
    if tag is None or value is None:
        tag = _child_tag_of(where.right, var)
        value = _numeric_literal(where.left)
        op = _FLIPPED[op]
    if tag is None or value is None:
        return None
    return tag, op, value


def _child_tag_of(node, var: str) -> Optional[str]:
    """The tag of a ``$var/tag`` path (exactly one child name step)."""
    if not isinstance(node, PathExpr):
        return None
    if not isinstance(node.start, VarRef) or node.start.name != var:
        return None
    if len(node.steps) != 1:
        return None
    step = node.steps[0]
    if not isinstance(step, Step) or step.axis != "child" or step.predicates:
        return None
    if not isinstance(step.test, NameTest) or step.test.name == "*":
        return None
    return step.test.name


def _numeric_literal(node) -> Optional[float]:
    if isinstance(node, Literal) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return float(node.value)
    return None


def fragment_can_match(
    fragment: FragmentInfo, tag: str, op: str, value: float
) -> bool:
    """Whether the fragment's recorded range can satisfy ``tag OP value``.

    Unknown tags (no recorded range) always *can* match — the statistics
    are an invariant only where they exist.
    """
    bounds = fragment.bounds(tag)
    if bounds is None:
        return True
    lo, hi = bounds
    if op == ">":
        return hi > value
    if op == ">=":
        return hi >= value
    if op == "<":
        return lo < value
    if op == "<=":
        return lo <= value
    if op == "=":
        return lo <= value <= hi
    if op == "!=":
        return not (lo == hi == value)
    return True
