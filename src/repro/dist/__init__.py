"""Document fragmentation and scatter-gather distribution (``repro.dist``).

The paper frames distributed XML data management as placing data and
computation across autonomous peers and letting the optimizer exploit
that placement.  This subsystem adds the *horizontal* placement axis:

* :class:`~repro.dist.fragmenter.Fragmenter` splits a document's
  repeated children into per-peer fragments (with optional replicas);
* :class:`~repro.dist.catalog.FragmentCatalog` (hung off
  :attr:`AXMLSystem.fragments <repro.peers.system.AXMLSystem.fragments>`)
  records where every fragment lives plus the per-fragment numeric
  ranges the pruning rewrite reads;
* the expression algebra gains ``FragmentedDoc`` / ``Gather``
  (:mod:`repro.core.expressions`), the evaluator gains scatter-gather
  fan-out, and the optimizer gains fragment-aware rewrites
  (:class:`~repro.core.rules.FragmentPushSelection`,
  :class:`~repro.core.rules.FragmentPrune`).

Bind a query parameter to ``"doc@dist"`` through the session façade to
query the fragmented view; answers are byte-identical to the whole
document, but selective queries ship only matching fragments' data.
"""

from .catalog import FragmentCatalog, FragmentInfo, FragmentedDocInfo
from .fragmenter import Fragmenter
from .pruning import fragment_can_match, selection_bounds

__all__ = [
    "FragmentCatalog",
    "FragmentInfo",
    "FragmentedDocInfo",
    "Fragmenter",
    "fragment_can_match",
    "selection_bounds",
]
