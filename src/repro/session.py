"""The high-level façade: one object owning the paper's full loop.

A :class:`Session` wraps an :class:`~repro.peers.system.AXMLSystem` and
runs the complete pipeline the paper describes — parse the query,
build the naive plan, rewrite it with equivalence rules (10)–(16)
through a pluggable :class:`~repro.core.strategies.OptimizerStrategy`,
optionally machine-verify the chosen rewrite, evaluate the winner —
and hands back a single structured :class:`ExecutionReport`: answer
forest, chosen plan, original/best cost, rewrite trace, and per-peer
transfer/compute statistics pulled from the network simulator.

>>> from repro import connect
>>> from repro.peers import AXMLSystem
>>> from repro.xmlcore import parse
>>> system = AXMLSystem.with_peers(["laptop", "server"], bandwidth=50_000.0)
>>> _ = system.peer("server").install_document("cat", parse(
...     "<c>" + "".join(f"<i><p>{n}</p></i>" for n in range(40)) + "</c>"))
>>> report = connect(system).query(
...     "for $i in $d//i where $i/p > 37 return $i/p", at="laptop",
...     bind={"d": "cat@server"})
>>> len(report.items)
2
>>> report.best_cost.bytes < report.original_cost.bytes
True

Entry points: :meth:`Session.query` (XQuery text in, report out),
:meth:`Session.run` (pre-built :class:`~repro.core.rules.Plan` in),
:meth:`Session.explain` (optimize only, execute nothing),
:meth:`Session.batch` (a sequence of either, with the system reset to a
clean measurement baseline between runs), and — for *concurrent*
workloads — :meth:`Session.submit` / :meth:`Session.drain` /
:meth:`Session.serve`, which hand a stream of jobs to the
:mod:`repro.engine` scheduler and return a fleet-level
:class:`~repro.engine.metrics.ServingReport`.  :func:`connect` is the
one-line constructor re-exported as ``repro.connect``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .core.cost import Cost, Statistics
from .core.costmodel import CostModel
from .core.evaluator import EvalOutcome, ExpressionEvaluator
from .core.expressions import (
    DocExpr,
    Expression,
    FragmentedDoc,
    GenericDoc,
    QueryApply,
    QueryRef,
    TreeExpr,
)
from .core.optimizer import Optimizer
from .core.planspace import CacheStats, PlanCache
from .core.rules import DEFAULT_RULES, Plan, RewriteRule
from .core.strategies import (
    OptimizationResult,
    OptimizerStrategy,
    improvement_ratio,
    make_strategy,
)
from .core.verify import VerificationResult, check_equivalence
from .errors import DecompositionError, SessionError, XQueryError
from .peers.system import AXMLSystem
from .xmlcore.model import Element
from .xmlcore.serializer import serialize
from .xquery import Query
from .xquery.decompose import Decomposition, free_variables, push_selection

__all__ = ["ExecutionReport", "Session", "connect"]

#: Value types accepted on the right-hand side of a parameter binding.
Binding = Union[str, Tuple[str, str], Expression, Element]
#: Requests accepted by :meth:`Session.batch`.
BatchRequest = Union[Plan, Tuple, Mapping]


@dataclass
class ExecutionReport:
    """Everything one pipeline run produced, in one structured object.

    ``describe()`` is the pretty-printer the examples and benchmarks
    share — the one place turning costs, verdicts and per-peer stats
    into text.
    """

    #: The chosen (cheapest admissible) plan.
    plan: Plan
    #: The naive plan the pipeline started from.
    original: Plan
    best_cost: Cost
    original_cost: Cost
    #: Plans scored during the search.
    explored: int
    #: Name of the strategy that searched ("none" when optimization was off).
    strategy: str
    #: XQuery source text, when the run entered through :meth:`Session.query`.
    source: Optional[str] = None
    #: Query name, when known.
    name: Optional[str] = None
    #: (plan, cost, producing rule) search trace, best first (empty unless
    #: the session was created with ``trace=True``).
    trace: List[Tuple[Plan, Cost, str]] = field(default_factory=list)
    #: Machine-checked equivalence of original vs chosen plan (``verify=True``).
    verification: Optional[VerificationResult] = None
    #: Rule-(11) split of the query, when it is decomposable.
    decomposition: Optional[Decomposition] = None
    #: The answer forest (empty for :meth:`Session.explain` / pure sends).
    items: List[Element] = field(default_factory=list)
    #: Whether the chosen plan was actually evaluated.
    executed: bool = False
    #: Virtual time at which value and side effects settled.
    completed_at: float = 0.0
    #: Whole-network totals for the execution (bytes, messages, by kind).
    network: Dict[str, object] = field(default_factory=dict)
    #: Per-peer stats: traffic attribution plus compute counters.
    peers: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Search-cache counters for this run (hits / misses / plans
    #: deduped).  Always populated by the built-in strategies —
    #: ``cost_misses`` counts actual cost-function invocations even when
    #: memoization is disabled (hits are then simply zero); ``None``
    #: only for third-party strategies that do not report metrics.
    plan_cache: Optional[CacheStats] = None
    #: Provenance of a degraded answer (:class:`repro.faults.PartialAnswer`)
    #: when the run executed with ``partial=True`` under faults and lost
    #: parts (or blew its deadline); ``None`` means complete and exact.
    partial: Optional[object] = None
    #: Virtual-clock span tree (:class:`repro.obs.Trace`) recorded when
    #: the session has a :class:`repro.obs.Tracer` installed; ``None``
    #: otherwise.  (The rewrite-*search* trace lives on :attr:`trace`;
    #: this is the *execution* trace.)
    spans: Optional[object] = None

    @property
    def improvement(self) -> float:
        """Scalar cost ratio original/best (>1 means the optimizer won)."""
        return improvement_ratio(self.original_cost, self.best_cost)

    @property
    def answers(self) -> List[str]:
        """The answer forest, serialized."""
        return [serialize(item) for item in self.items]

    def describe(self, include_trace: Optional[bool] = None) -> str:
        """Human-readable report; the library's single cost pretty-printer.

        ``include_trace`` defaults to whether a trace was recorded.
        """
        label = self.name or "(anonymous)"
        lines = []
        if self.source is not None:
            lines.append(f"query:       {label} @{self.original.site}")
        lines.append(f"original:    {self.original.describe()}")
        lines.append(f"             {self.original_cost.describe()}")
        lines.append(f"plan:        {self.plan.describe()}")
        lines.append(f"             {self.best_cost.describe()}")
        lines.append(
            f"improvement: x{self.improvement:.2f}  "
            f"({self.explored} plans explored, {self.strategy} strategy)"
        )
        if self.decomposition is not None:
            lines.append(
                "decompose:   rule (11) applies "
                f"(inner {self.decomposition.inner.name!r})"
            )
        if self.verification is not None:
            lines.append(
                f"equivalent?  {self.verification.equivalent} "
                f"({self.verification.reason})"
            )
        if self.executed:
            lines.append(
                f"answers:     {len(self.items)} items in "
                f"{self.completed_at * 1000:.2f}ms virtual time"
            )
            for peer_id, stats in sorted(self.peers.items()):
                traffic = stats.get("traffic")
                if traffic is None:
                    continue
                lines.append(
                    f"  peer {peer_id:12s} {traffic.describe()}, "
                    f"work {stats.get('work_done', 0)}"
                )
        if self.plan_cache is not None and (
            self.plan_cache.cost_hits
            or self.plan_cache.plans_deduped
            or self.plan_cache.expand_hits
        ):
            lines.append(f"{'':13s}{self.plan_cache.describe()}")
        if include_trace is None:
            include_trace = bool(self.trace)
        if include_trace and self.trace:
            lines.append("trace:")
            for plan, cost, rule in self.trace:
                lines.append(f"  {rule:32s} {cost.describe():>34s}")
        return "\n".join(lines)


class Session:
    """The documented entry point: a system plus a configured pipeline.

    Parameters
    ----------
    system:
        The :class:`AXMLSystem` to query.
    strategy:
        A registered strategy name (``"beam"``, ``"greedy"``,
        ``"exhaustive"``, or anything added via
        :func:`~repro.core.strategies.register_strategy`) or an
        :class:`~repro.core.strategies.OptimizerStrategy` instance.
        ``strategy_options`` are forwarded to the named factory
        (e.g. ``strategy_options={"depth": 2, "beam": 4}``).
    verify:
        Machine-check every rewrite kept during the search *and* the
        finally chosen plan against the original (slow, sound).
    trace:
        Keep the full search trace on each report.  (Passing a
        :class:`repro.obs.Tracer` here is deprecated — use ``tracer=``.)
    tracer:
        A :class:`repro.obs.Tracer` instance turning on virtual-clock
        span recording for executions and serving runs.
    cost_model:
        How candidate plans are priced during the search: a registered
        name (``"oracle"`` — clone-and-simulate every candidate, the
        historical default; ``"analytic"`` — static estimation from
        catalog statistics, no simulation; ``"hybrid"`` — analytic
        frontier, oracle-checked final plan; or anything added via
        :func:`~repro.core.costmodel.register_cost_model`), a
        :class:`~repro.core.costmodel.CostModel` instance, or any
        ``plan -> Cost`` callable.  ``cost_model_options`` are forwarded
        to the named factory; ``statistics`` seeds the analytic
        estimator's selectivity table.
    rules / pick_policy:
        Forwarded to the optimizer and evaluator.  ``cost_fn`` is the
        deprecated spelling of a callable ``cost_model``.
    isolate:
        When true (default), plans execute against a clone of Σ so the
        session's system is never mutated by a run — matching the
        measurement semantics of :func:`repro.core.cost.measure`.  Set
        to false to let side effects (sends, deployments) land on the
        live system; the system is then :meth:`~AXMLSystem.reset` before
        each run so the report's accounting covers exactly that run.
    plan_cache:
        The plan-space transposition table
        (:class:`~repro.core.planspace.PlanCache`).  By default the
        session creates its own, so every distinct plan is costed and
        rule-expanded at most once per search — and, because isolated
        runs never mutate Σ, the table keeps paying off across runs.
        Pass an existing cache to share it between sessions over the
        *same* system state, or ``plan_cache=None`` to disable
        memoization entirely (debugging aid: same best plans, but every
        search re-costs and re-expands the whole space from scratch).
        Sessions with ``isolate=False`` clear the table before each
        run, since executions mutate Σ.
    """

    def __init__(
        self,
        system: AXMLSystem,
        *,
        strategy: Union[str, OptimizerStrategy] = "beam",
        verify: bool = False,
        trace=None,
        tracer=None,
        rules: Sequence[RewriteRule] = DEFAULT_RULES,
        cost_fn=None,
        cost_model: Union[str, CostModel, None] = None,
        cost_model_options: Optional[Mapping] = None,
        statistics: Optional[Statistics] = None,
        pick_policy=None,
        isolate: bool = True,
        strategy_options: Optional[Mapping] = None,
        plan_cache: Union[PlanCache, None, str] = "auto",
        retry=None,
        fault_plan=None,
        profiler=None,
    ) -> None:
        self.system = system
        self.strategy = make_strategy(strategy, **dict(strategy_options or {}))
        self.verify = verify
        # ``trace`` is the legacy search-trace flag (record the rewrite
        # trace on reports); ``tracer`` installs a :class:`repro.obs.Tracer`
        # for virtual-clock span recording.  Passing a Tracer instance
        # through ``trace=`` still works but is deprecated.
        if isinstance(trace, bool) or trace is None:
            self.trace = bool(trace)
            #: Installed :class:`repro.obs.Tracer`; executions and drains
            #: reset and fill it, surfacing the result on
            #: :attr:`ExecutionReport.spans` / ``ServingReport.trace``.
            self.tracer = tracer
        else:
            warnings.warn(
                "passing a Tracer through Session(trace=...) is deprecated; "
                "use Session(tracer=...) — trace= stays the bool "
                "search-trace flag",
                DeprecationWarning,
                stacklevel=2,
            )
            if tracer is not None:
                raise SessionError(
                    "pass the Tracer through tracer= only, not both "
                    "trace= and tracer="
                )
            self.trace = False
            self.tracer = trace
        #: Optional :class:`repro.obs.WallProfiler` timing the pipeline's
        #: wall-clock phases (parse / optimize / evaluate / serialize).
        self.profiler = profiler
        self.pick_policy = pick_policy
        self.isolate = isolate
        #: Recovery policy (:class:`repro.faults.RetryPolicy`) wired into
        #: every evaluator this session creates; ``None`` (default) means
        #: faults propagate typed on first occurrence.
        self.retry = retry
        #: Fault plan (:class:`repro.faults.FaultPlan`) installed on the
        #: serving/execution system before evaluation; ``None`` or an
        #: empty plan leaves behavior byte-identical to fault-free runs.
        self.fault_plan = fault_plan
        if isinstance(plan_cache, str):
            if plan_cache != "auto":
                raise SessionError(
                    f"plan_cache must be a PlanCache, None, or 'auto'; "
                    f"got {plan_cache!r}"
                )
            plan_cache = PlanCache()
        self.plan_cache = plan_cache
        #: Equivalence verdicts from the current pipeline run, keyed by
        #: plan pair, so the finally chosen plan is not re-verified after
        #: the search already checked it (check_equivalence is the slow,
        #: evaluate-both-sides path).
        self._verify_cache: Dict[Tuple[str, str], VerificationResult] = {}
        #: The open serving engine, created lazily by :meth:`submit`.
        self._engine = None
        verifier = self._verified_equivalent if verify else None
        self.optimizer = Optimizer(
            system,
            rules=rules,
            cost_fn=cost_fn,
            cost_model=cost_model,
            verifier=verifier,
            cache=self.plan_cache,
            pick_policy=pick_policy,
            statistics=statistics,
            **dict(cost_model_options or {}),
        )
        #: The resolved :class:`~repro.core.costmodel.CostModel` pricing
        #: this session's searches (``session.cost_model.name`` names it).
        self.cost_model = self.optimizer.cost_model

    def _verified_equivalent(self, left: Plan, right: Plan) -> bool:
        return self._check_equivalence(left, right).equivalent

    def _check_equivalence(self, left: Plan, right: Plan) -> VerificationResult:
        key = (left.describe(), right.describe())
        result = self._verify_cache.get(key)
        if result is None:
            result = check_equivalence(left, right, self.system, self.pick_policy)
            self._verify_cache[key] = result
        return result

    # -- plan construction ---------------------------------------------------------
    def compile(
        self,
        source: Union[str, Query],
        params: Sequence[str] = (),
        name: Optional[str] = None,
    ) -> Query:
        """Parse XQuery text into a :class:`Query` (idempotent on queries)."""
        if isinstance(source, Query):
            return source
        if self.profiler is not None:
            with self.profiler.phase("parse"):
                return Query(source, params=params, name=name)
        return Query(source, params=params, name=name)

    def plan(
        self,
        source: Union[str, Query],
        at: str,
        bind: Optional[Mapping[str, Binding]] = None,
        name: Optional[str] = None,
    ) -> Plan:
        """The *naive* plan: apply the query at ``at`` to its bound arguments.

        ``bind`` maps each query parameter to the data it ranges over:
        ``"doc@peer"`` (a concrete document), ``"doc@any"`` (a generic
        document resolved through the registry), ``"doc@dist"`` (the
        fragmented view of a document registered in the system's
        :attr:`~repro.peers.system.AXMLSystem.fragments` catalog,
        evaluated scatter-gather), a ``(doc, peer)`` tuple,
        an :class:`Element` (a literal tree, homed at ``at``), or any
        algebra :class:`Expression`.
        """
        self.system.peer(at)  # fail fast on unknown sites
        bind = dict(bind or {})
        query = self.compile(source, params=tuple(bind), name=name)
        # parameters may be declared (external variables) or implicit (free
        # variables of the body); both need a binding before evaluation
        declared = {v.name for v in query.module.variables}
        implicit = free_variables(query.module.body) - declared
        missing = sorted(
            set(p for p in query.params if p not in bind)
            | (implicit - set(bind))
        )
        if missing:
            raise SessionError(
                f"no binding for query parameter(s) {missing}; "
                "pass bind={'param': 'doc@peer', ...}"
            )
        # a pre-built Query may not list its implicit free variables as
        # params; widen it so their bindings become arguments, not no-ops
        extra = sorted((implicit & set(bind)) - set(query.params))
        if extra:
            query = Query(
                query.source,
                params=tuple(query.params) + tuple(extra),
                name=query.name,
            )
        args = tuple(self._resolve_binding(bind[p], at) for p in query.params)
        return Plan(QueryApply(QueryRef(query, at), args), at)

    def _resolve_binding(self, value: Binding, at: str) -> Expression:
        if isinstance(value, Expression):
            return value
        if isinstance(value, Element):
            return TreeExpr(value, at)
        if isinstance(value, tuple) and len(value) == 2:
            name, peer = value
            return self._doc_expression(name, peer)
        if isinstance(value, str) and "@" in value:
            name, _, peer = value.rpartition("@")
            return self._doc_expression(name, peer)
        raise SessionError(
            f"cannot bind {value!r}: expected 'doc@peer', 'doc@any', a "
            "(doc, peer) tuple, an Element, or an algebra Expression"
        )

    def _doc_expression(self, name: str, peer: str) -> Expression:
        if peer == "any":
            return GenericDoc(name)
        if peer == "dist":
            if not self.system.fragments.is_fragmented(name):
                raise SessionError(
                    f"document {name!r} is not fragmented; register it "
                    "through repro.dist.Fragmenter or bind 'doc@peer'"
                )
            return FragmentedDoc(name)
        self.system.peer(peer)
        return DocExpr(name, peer)

    # -- the pipeline --------------------------------------------------------------
    def query(
        self,
        source: Union[str, Query],
        at: str,
        bind: Optional[Mapping[str, Binding]] = None,
        name: Optional[str] = None,
        optimize: bool = True,
        deadline: Optional[float] = None,
        partial: bool = False,
    ) -> ExecutionReport:
        """Parse → decompose → optimize → verify → evaluate, in one call.

        ``deadline`` bounds the answer's virtual settle time (typed
        :class:`~repro.errors.DeadlineExceededError` past it);
        ``partial=True`` degrades gracefully under injected faults
        instead of failing — see :mod:`repro.faults`.
        """
        query = self.compile(source, params=tuple(bind or {}), name=name)
        plan = self.plan(query, at, bind=bind, name=name)
        return self._pipeline(
            plan,
            execute=True,
            optimize=optimize,
            source=query.source,
            name=query.name,
            decomposition=self._try_decompose(query),
            deadline=deadline,
            partial=partial,
        )

    def run(self, plan: Plan, optimize: bool = True) -> ExecutionReport:
        """Optimize (unless disabled) and evaluate a pre-built plan."""
        return self._pipeline(plan, execute=True, optimize=optimize)

    def explain(
        self,
        plan_or_source: Union[Plan, str, Query],
        at: Optional[str] = None,
        bind: Optional[Mapping[str, Binding]] = None,
        name: Optional[str] = None,
    ) -> ExecutionReport:
        """Optimize and report — evaluate nothing, mutate nothing."""
        if isinstance(plan_or_source, Plan):
            return self._pipeline(plan_or_source, execute=False, optimize=True)
        if at is None:
            raise SessionError("explain(source, ...) needs the evaluation site 'at'")
        query = self.compile(plan_or_source, params=tuple(bind or {}), name=name)
        plan = self.plan(query, at, bind=bind, name=name)
        return self._pipeline(
            plan,
            execute=False,
            optimize=True,
            source=query.source,
            name=query.name,
            decomposition=self._try_decompose(query),
        )

    def batch(
        self, requests: Iterable[BatchRequest], at: Optional[str] = None
    ) -> List[ExecutionReport]:
        """Run a sequence of plans/queries, resetting Σ's accounting between runs.

        Each request is a :class:`Plan`, a mapping of :meth:`query` keyword
        arguments, or a ``(source, at, bind)`` tuple (``at`` may be elided
        when the batch-level ``at`` is given).
        """
        reports: List[ExecutionReport] = []
        for index, request in enumerate(requests):
            if index:
                self.system.reset()
            if isinstance(request, Plan):
                reports.append(self.run(request))
            elif isinstance(request, Mapping):
                kwargs = dict(request)
                kwargs.setdefault("at", at)
                reports.append(self.query(**kwargs))
            elif isinstance(request, tuple) and 2 <= len(request) <= 3:
                source, site = request[0], request[1]
                bind = request[2] if len(request) == 3 else None
                if isinstance(site, Mapping):  # (source, bind) with batch-level at
                    source, site, bind = request[0], at, request[1]
                if site is None:
                    raise SessionError(
                        "batch request has no evaluation site; pass at="
                    )
                reports.append(self.query(source, site, bind=bind))
            else:
                raise SessionError(
                    f"unsupported batch request {request!r}; expected a Plan, "
                    "a query-kwargs mapping, or a (source, at, bind) tuple"
                )
        return reports

    # -- writes --------------------------------------------------------------------
    def write(self, op, now: float = 0.0):
        """Apply one node-targeted mutation to the live Σ; returns a
        :class:`~repro.writes.WriteResult`.

        The op (:class:`~repro.writes.InsertOp` /
        :class:`~repro.writes.UpdateOp` / :class:`~repro.writes.DeleteOp`)
        is routed to the owning fragment via the catalog's ordinal
        ranges, lands on the primary copy, and propagates to replicas
        and mirrors as charged ships on the virtual clock.  Unlike
        :meth:`query` under ``isolate=True``, a write always mutates
        ``self.system`` — that is the point.

        The plan cache is deliberately *not* cleared: the write bumps
        the touched documents' epochs, and epoch-salted cache keys
        (:func:`repro.core.planspace.doc_epoch_signature`) orphan
        exactly the stale entries while every other document's memos
        keep serving hits.  Only the equivalence-verifier cache, which
        is keyed on plan pairs alone, is dropped wholesale.
        """
        from .writes import DocumentWriter

        result = DocumentWriter(self.system).apply(op, now=now)
        self._verify_cache.clear()
        return result

    def insert(self, doc: str, item, ordinal: Optional[int] = None, now: float = 0.0):
        """Insert ``item`` as child ``ordinal`` of ``doc`` (None appends)."""
        from .writes import InsertOp

        return self.write(InsertOp(doc, item, ordinal), now=now)

    def update(self, doc: str, ordinal: int, tag: str, value: str, now: float = 0.0):
        """Set item ``ordinal``'s ``<tag>`` child of ``doc`` to ``value``."""
        from .writes import UpdateOp

        return self.write(UpdateOp(doc, ordinal, tag, value), now=now)

    def delete(self, doc: str, ordinal: int, now: float = 0.0):
        """Remove item ``ordinal`` from ``doc``."""
        from .writes import DeleteOp

        return self.write(DeleteOp(doc, ordinal), now=now)

    # -- concurrent serving --------------------------------------------------------
    def engine(self, seed: int = 0, admission="queue-depth", actor=None):
        """The session's open serving engine, created on first use.

        Call explicitly to pick a tie-breaking ``seed``, an ``admission``
        policy, or a background placement ``actor``
        (:class:`repro.placement.PlacementActor`) before the first
        :meth:`submit`; once open, the same engine is returned until
        :meth:`drain` closes it.  An engine drained directly (or killed
        mid-drain) is replaced by a fresh one on the next call.
        """
        from .engine.scheduler import Scheduler

        if self._engine is None or self._engine.drained:
            self._engine = Scheduler(
                self, seed=seed, admission=admission, actor=actor
            )
        return self._engine

    def submit(
        self,
        source,
        at: Optional[str] = None,
        bind: Optional[Mapping[str, Binding]] = None,
        name: Optional[str] = None,
        arrival: float = 0.0,
        optimize: bool = True,
        deadline: Optional[float] = None,
        partial: bool = False,
    ):
        """Admit one query to the serving engine; returns its pending job.

        Unlike :meth:`query`, nothing executes yet — jobs interleave as
        discrete events on one shared virtual clock when :meth:`drain`
        runs them, so transfers and compute of *different* queries
        contend for the same FIFO links and serial CPUs.  ``arrival`` is
        the job's virtual arrival time (its evaluation clock starts
        there, not at zero).  Accepts a pre-built
        :class:`~repro.engine.jobs.JobRequest` in place of ``source``.
        """
        from .engine.jobs import JobRequest

        if isinstance(source, JobRequest):
            request = source
        else:
            if at is None:
                raise SessionError("submit(source, ...) needs the site 'at'")
            request = JobRequest(
                source=source,
                at=at,
                bind=dict(bind) if bind else None,
                name=name,
                arrival=arrival,
                optimize=optimize,
                deadline=deadline,
                partial=partial,
            )
        return self.engine().submit(request)

    def submit_write(self, op, arrival: float = 0.0, name: Optional[str] = None):
        """Admit one write op to the serving engine; returns its pending job.

        The write interleaves with queries on the shared virtual clock —
        its coherence deltas contend for the same FIFO links.  Requires
        a non-isolated session (``connect(..., isolate=False)``) so the
        serving Σ is the one the optimizer plans against.
        """
        from .engine.jobs import JobRequest

        return self.engine().submit(
            JobRequest.for_write(op, arrival=arrival, name=name)
        )

    def drain(self, feed=None):
        """Run every submitted job to quiescence; returns the fleet report.

        Processes the engine's event heap in virtual-time order (seeded
        deterministic tie-breaking), then closes the engine — the next
        :meth:`submit` opens a fresh one.  ``feed`` is an optional
        closed-loop source (see
        :class:`~repro.engine.loadgen.ClosedLoopFeed`) consulted at every
        completion for follow-on requests.  Returns a
        :class:`~repro.engine.metrics.ServingReport`: per-job
        :class:`ExecutionReport`\\ s plus fleet metrics (makespan,
        latency percentiles, queries/sec, per-peer utilization).
        """
        if self._engine is None and feed is None:
            raise SessionError("nothing submitted; call submit() first")
        engine = self.engine()
        try:
            return engine.drain(feed)
        finally:
            self._engine = None

    def serve(
        self,
        requests=(),
        feed=None,
        seed: int = 0,
        admission="queue-depth",
        actor=None,
    ):
        """Submit a request stream and drain it, in one call.

        Convenience over :meth:`submit` + :meth:`drain` for whole arrival
        processes: ``requests`` is an iterable of
        :class:`~repro.engine.jobs.JobRequest` (e.g. from
        :meth:`LoadGenerator.open_loop
        <repro.engine.loadgen.LoadGenerator.open_loop>`), ``feed`` a
        closed-loop source, ``actor`` an optional background placement
        actor ticked on the virtual clock between query events (its
        action trace lands on :attr:`ServingReport.actions
        <repro.engine.metrics.ServingReport.actions>`).  Uses a private
        engine so pending :meth:`submit` state is never mixed in (raises
        if the session already has an open engine).
        """
        from .engine.scheduler import Scheduler

        if self._engine is not None and not self._engine.drained:
            raise SessionError(
                "session has an open engine with pending jobs; "
                "drain() it before calling serve()"
            )
        engine = Scheduler(self, seed=seed, admission=admission, actor=actor)
        engine.submit_all(requests)
        return engine.drain(feed)

    def plan_job(self, request) -> ExecutionReport:
        """Plan (and optimize) one serving job without executing it.

        The scheduler's planning half: builds the naive plan for a
        :class:`~repro.engine.jobs.JobRequest`, searches it through the
        session's strategy with the shared plan cache (warm-cache
        serving), optionally verifies the winner, and returns the
        not-yet-executed report for the engine to run.
        """
        query = self.compile(
            request.source, params=tuple(request.bind or {}), name=request.name
        )
        plan = self.plan(query, request.at, bind=request.bind, name=request.name)
        result = self._optimize(plan, request.optimize)
        verification: Optional[VerificationResult] = None
        if self.verify:
            if result.best is plan:
                verification = VerificationResult(True, "plan unchanged")
            else:
                verification = self._check_equivalence(plan, result.best)
        return ExecutionReport(
            plan=result.best,
            original=plan,
            best_cost=result.best_cost,
            original_cost=result.original_cost,
            explored=result.explored,
            strategy=result.strategy or getattr(self.strategy, "name", "?"),
            source=query.source,
            name=query.name,
            trace=list(result.trace) if self.trace else [],
            verification=verification,
            plan_cache=result.cache,
        )

    # -- internals ----------------------------------------------------------------
    def _try_decompose(self, query: Query) -> Optional[Decomposition]:
        try:
            return push_selection(query)
        except (DecompositionError, XQueryError):
            return None

    def _optimize(self, plan: Plan, optimize: bool) -> OptimizationResult:
        if self.profiler is not None:
            with self.profiler.phase("optimize"):
                return self._optimize_inner(plan, optimize)
        return self._optimize_inner(plan, optimize)

    def _optimize_inner(self, plan: Plan, optimize: bool) -> OptimizationResult:
        if not optimize:
            space = self.optimizer.search_space()
            cost = space.score_original(plan)
            return OptimizationResult(
                best=plan,
                best_cost=cost,
                original_cost=cost,
                explored=1,
                trace=[(plan, cost, "original")],
                strategy="none",
                cache=space.metrics.copy(),
            )
        return self.optimizer.optimize_with(self.strategy, plan, verify=self.verify)

    def _pipeline(
        self,
        plan: Plan,
        execute: bool,
        optimize: bool,
        source: Optional[str] = None,
        name: Optional[str] = None,
        decomposition: Optional[Decomposition] = None,
        deadline: Optional[float] = None,
        partial: bool = False,
    ) -> ExecutionReport:
        self._verify_cache.clear()  # Σ may have changed since the last run
        if self.plan_cache is not None and not self.isolate:
            # non-isolated executions mutate Σ, so cached costs are stale
            self.plan_cache.clear()
        result = self._optimize(plan, optimize)
        verification: Optional[VerificationResult] = None
        if self.verify:
            if result.best is plan:
                verification = VerificationResult(True, "plan unchanged")
            else:
                verification = self._check_equivalence(plan, result.best)
        report = ExecutionReport(
            plan=result.best,
            original=plan,
            best_cost=result.best_cost,
            original_cost=result.original_cost,
            explored=result.explored,
            strategy=result.strategy or getattr(self.strategy, "name", "?"),
            source=source,
            name=name,
            trace=list(result.trace) if self.trace else [],
            verification=verification,
            decomposition=decomposition,
            plan_cache=result.cache,
        )
        if execute:
            self._execute(report, deadline=deadline, partial=partial)
        return report

    def _install_faults(self, target: AXMLSystem) -> None:
        """Compile the session's fault plan onto ``target``'s network.

        No plan (or an empty one) installs nothing — ``network.faults``
        stays ``None`` and the exact historical code paths run.
        """
        if self.fault_plan is not None and self.fault_plan:
            from .faults.injector import FaultState

            state = getattr(target.network, "faults", None)
            if state is None or state.plan is not self.fault_plan:
                target.network.faults = FaultState(self.fault_plan)

    def _execute(
        self,
        report: ExecutionReport,
        deadline: Optional[float] = None,
        partial: bool = False,
    ) -> None:
        """Evaluate the chosen plan; fill in answers and accounting."""
        import math as _math

        if self.isolate:
            target = self.system.clone()
        else:
            target = self.system
            target.reset()
        self._install_faults(target)
        tracer = self.tracer
        if tracer is not None:
            tracer.reset()
            target.network.tracer = tracer
        evaluator = ExpressionEvaluator(
            target,
            self.pick_policy,
            recovery=self.retry,
            tracer=tracer,
            profiler=self.profiler,
        )
        deadline_at = deadline if deadline is not None else _math.inf
        evaluator.begin_job(deadline_at=deadline_at, partial=partial)
        if tracer is not None:
            tracer.begin_job(
                report.name or "query",
                0.0,
                site=report.plan.site,
                strategy=report.strategy,
                explored=report.explored,
            )
            tracer.push("eval", "eval", 0.0)
        try:
            if self.profiler is not None:
                with self.profiler.phase("evaluate"):
                    outcome: EvalOutcome = evaluator.eval(
                        report.plan.expr, report.plan.site
                    )
            else:
                outcome = evaluator.eval(report.plan.expr, report.plan.site)
        except BaseException:
            if tracer is not None:
                tracer.pop(target.clock)
                tracer.end_job(target.clock, status="failed")
            raise
        if tracer is not None:
            tracer.pop(outcome.completed_at)
            tracer.mark("settle", "mark", outcome.completed_at)
            tracer.end_job(outcome.completed_at, status="done")
            report.spans = tracer.trace()
        if outcome.completed_at > deadline_at and not partial:
            from .errors import DeadlineExceededError

            raise DeadlineExceededError(
                f"query {report.name or '(anonymous)'} settled at "
                f"{outcome.completed_at:.6f}, past its deadline "
                f"{deadline_at:.6f}",
                at=deadline_at,
            )
        if partial and (
            evaluator.losses or outcome.completed_at > deadline_at
        ):
            from .faults.recovery import PartialAnswer

            report.partial = PartialAnswer(
                lost=tuple(evaluator.losses),
                retries=evaluator.job_retries,
                deadline_exceeded=outcome.completed_at > deadline_at,
            )
        stats = target.network.stats
        report.items = list(outcome.items)
        report.executed = True
        report.completed_at = outcome.completed_at
        report.network = {
            "bytes": stats.bytes,
            "messages": stats.messages,
            "bytes_by_kind": dict(stats.bytes_by_kind),
            "messages_by_kind": dict(stats.by_kind),
        }
        report.peers = target.stats_snapshot()


def connect(
    system: Optional[AXMLSystem] = None,
    *,
    peers: Optional[Sequence[str]] = None,
    topology: str = "full_mesh",
    **session_kwargs,
) -> Session:
    """Open a :class:`Session` — the documented top-level entry point.

    Either hand over an existing :class:`AXMLSystem`, or name the peers
    and let ``connect`` build one on a standard topology::

        session = repro.connect(system, strategy="greedy", verify=True)
        session = repro.connect(peers=["laptop", "server"])
    """
    if system is None:
        if not peers:
            raise SessionError("connect() needs an AXMLSystem or peers=[...]")
        system = AXMLSystem.with_peers(list(peers), topology=topology)
    elif peers:
        raise SessionError("pass either a system or peers=[...], not both")
    return Session(system, **session_kwargs)
