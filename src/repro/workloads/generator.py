"""Seeded procedural generation of whole distributed-query scenarios.

The paper's claims are about behaviour across *many* configurations —
topologies, placements, query shapes — while hand-written examples can
only ever probe a few.  :class:`ScenarioGenerator` turns a seed into a
complete, ready-to-query :class:`~repro.peers.system.AXMLSystem`:

* a network on one of the standard topologies (star / ring / mesh /
  clustered, built through :mod:`repro.net.topology`) with drawn link
  quality;
* a peer population with heterogeneous compute speeds;
* plain XML documents with varied vocabularies, AXML documents with
  embedded service calls, declarative services over host documents, and
  optional generic-document replicas registered under ``name@any``;
* an XQuery workload of configurable size over those documents, spanning
  several shapes (projection, selection, construction, aggregation,
  joins).

Everything is drawn from one ``random.Random`` seeded by
``(seed, index)``, so the same seed reproduces the same scenario down to
the byte — :meth:`Scenario.serialize` is the canonical text form the
determinism tests compare.  No global randomness is touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from random import Random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..dist.fragmenter import Fragmenter
from ..errors import WorkloadError
from ..net import topology as topo
from ..net.network import Network
from ..axml.document import make_service_call
from ..peers.system import AXMLSystem
from ..xmlcore.model import Element, Text, element
from ..xmlcore.serializer import serialize

__all__ = [
    "ScenarioSpec",
    "GeneratedDocument",
    "GeneratedService",
    "GeneratedQuery",
    "GeneratedWrite",
    "Scenario",
    "ScenarioGenerator",
    "TOPOLOGIES",
    "QUERY_SHAPES",
    "CHAOS_SPEC",
    "FRAGMENTED_SPEC",
    "WRITE_MIX_SPEC",
]

#: Topology names the generator draws from (`"any"` rotates over them).
TOPOLOGIES = ("star", "ring", "mesh", "clustered")

#: Query shapes the generator can emit.
QUERY_SHAPES = ("project", "filter", "construct", "let_filter", "count", "join")

_COMPUTE_SPEEDS = (20_000.0, 50_000.0, 100_000.0, 250_000.0, 500_000.0)
_LATENCIES = (0.005, 0.01, 0.02, 0.03)
_BANDWIDTHS = (100_000.0, 250_000.0, 1_000_000.0)
_ROOT_TAGS = ("catalog", "inventory", "feed", "library", "ledger")
_ITEM_TAGS = ("item", "entry", "record", "product", "row")
_NAME_TAGS = ("name", "title", "label", "id")
_NUM_TAGS = ("price", "score", "qty", "rank", "weight")
_WORDS = ("alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "zeta")


@dataclass(frozen=True)
class ScenarioSpec:
    """Shape parameters for one generated scenario (all sizes are targets).

    ``topology="any"`` rotates deterministically through
    :data:`TOPOLOGIES` by scenario index.  ``replicas`` documents are
    mirrored onto other peers and registered as generic documents, so
    some query bindings become ``name@any``.  ``axml_documents`` embed an
    immediate service call each (when at least one service exists).
    """

    peers: int = 4
    topology: str = "any"
    documents: int = 3
    axml_documents: int = 1
    items: int = 12
    payload_words: int = 3
    value_range: int = 25
    services: int = 2
    replicas: int = 1
    queries: int = 5
    query_shapes: Tuple[str, ...] = QUERY_SHAPES
    #: Number of passive documents to fragment horizontally across peers
    #: (the ``fragmented`` scenario family); their query bindings become
    #: ``name@dist``, evaluated scatter-gather through the catalog.
    fragments: int = 0
    #: Replicas of each fragment, mirrored onto other peers and resolved
    #: through the generic registry (pick policies choose the copy).
    fragment_replicas: int = 0
    #: Zipf popularity exponent for *request streams* over the generated
    #: queries (:class:`repro.engine.LoadGenerator` reads it as its
    #: default skew).  0 (the default) keeps the historical uniform
    #: draw; the knob never feeds the generation RNG, so scenarios
    #: themselves are byte-identical whatever its value.
    zipf_skew: float = 0.0
    #: Number of seeded write operations (:mod:`repro.writes`) to draw
    #: over the passive documents — the read/write-mix family.  Only
    #: drawn from the rng when > 0, so existing seeds reproduce
    #: byte-identically.
    writes: int = 0
    #: Correlated slow peers: this many peers (drawn together, one gated
    #: draw) get their compute speed divided by ``slow_factor`` — the
    #: "one rack is overloaded" long-tail family.  0 (the default) draws
    #: nothing and keeps scenarios byte-identical.
    slow_peers: int = 0
    slow_factor: float = 4.0
    #: Flash-crowd burst factor read by :class:`repro.engine.LoadGenerator`
    #: as its default ``flash`` knob for open-loop streams (0 = off; the
    #: knob never feeds the generation RNG).
    flash_crowd: float = 0.0

    def validate(self) -> None:
        if self.peers < 1:
            raise WorkloadError("a scenario needs at least one peer")
        if self.topology != "any" and self.topology not in TOPOLOGIES:
            raise WorkloadError(
                f"unknown topology {self.topology!r}; "
                f"pick one of {', '.join(TOPOLOGIES)} or 'any'"
            )
        for count_field in (
            "documents", "axml_documents", "services", "replicas",
            "payload_words", "value_range", "fragments", "fragment_replicas",
            "writes", "slow_peers",
        ):
            if getattr(self, count_field) < 0:
                raise WorkloadError(f"{count_field} cannot be negative")
        if self.slow_peers > self.peers:
            raise WorkloadError(
                f"slow_peers ({self.slow_peers}) cannot exceed "
                f"peers ({self.peers})"
            )
        if self.slow_factor < 1:
            raise WorkloadError(
                f"slow_factor must be >= 1, got {self.slow_factor!r}"
            )
        if self.flash_crowd != 0 and self.flash_crowd < 1:
            raise WorkloadError(
                f"flash_crowd must be 0 (off) or >= 1, "
                f"got {self.flash_crowd!r}"
            )
        if self.documents + self.axml_documents < 1:
            raise WorkloadError("a scenario needs at least one document")
        if self.items < 1:
            raise WorkloadError("documents need at least one item")
        if self.queries < 1:
            raise WorkloadError("a scenario needs at least one query")
        if self.zipf_skew < 0:
            raise WorkloadError(
                f"zipf_skew must be >= 0, got {self.zipf_skew!r}"
            )
        unknown = sorted(set(self.query_shapes) - set(QUERY_SHAPES))
        if unknown:
            raise WorkloadError(
                f"unknown query shapes {unknown}; "
                f"available: {', '.join(QUERY_SHAPES)}"
            )
        if self.replicas > self.documents:
            raise WorkloadError("cannot replicate more documents than exist")
        if self.fragments:
            if self.peers < 2:
                raise WorkloadError(
                    "fragmented scenarios need at least two peers"
                )
            if self.fragments + self.replicas > self.documents:
                raise WorkloadError(
                    "cannot fragment more passive documents than remain "
                    "after replication"
                )
            if self.fragment_replicas > self.peers - 1:
                raise WorkloadError(
                    "fragment_replicas cannot exceed peers - 1"
                )

    def to_kwargs(self) -> Dict[str, object]:
        """Literal kwargs reconstructing this spec (for repro scripts)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class GeneratedDocument:
    """One generated document plus the vocabulary queries need."""

    name: str
    peer: str
    item_tag: str
    name_tag: str
    num_tag: str
    n_items: int
    #: Generic name when the document was replicated (else None).
    generic: Optional[str] = None
    #: Whether the document embeds a service call (AXML).
    active: bool = False
    #: Whether the document was horizontally fragmented (queries then
    #: bind it as ``name@dist``; the whole document stays installed at
    #: its home peer as the unfragmented baseline).
    fragmented: bool = False


@dataclass(frozen=True)
class GeneratedService:
    name: str
    peer: str
    source: str


@dataclass(frozen=True)
class GeneratedQuery:
    """One workload query, ready for ``Session.query(**query.kwargs())``."""

    name: str
    shape: str
    source: str
    at: str
    #: parameter -> "doc@peer" / "generic@any" binding strings.
    bind: Tuple[Tuple[str, str], ...]

    @property
    def bindings(self) -> Dict[str, str]:
        return dict(self.bind)

    def kwargs(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "at": self.at,
            "bind": self.bindings,
            "name": self.name,
        }


@dataclass(frozen=True)
class GeneratedWrite:
    """One seeded write op of the read/write-mix scenario family.

    Stored in provenance form (the inserted item as serialized XML) so
    :meth:`Scenario.serialize` stays pure text; :meth:`op` materializes
    the actual :mod:`repro.writes` operation on demand.
    """

    name: str
    doc: str
    #: ``"insert"`` / ``"update"`` / ``"delete"``.
    kind: str
    ordinal: int
    #: Field tag/value for updates.
    tag: Optional[str] = None
    value: Optional[str] = None
    #: Serialized item subtree for inserts.
    item_xml: Optional[str] = None

    def op(self):
        """The concrete write op this record describes."""
        from ..writes import DeleteOp, InsertOp, UpdateOp
        from ..xmlcore import parse

        if self.kind == "insert":
            return InsertOp(self.doc, parse(self.item_xml), self.ordinal)
        if self.kind == "update":
            return UpdateOp(self.doc, self.ordinal, self.tag, self.value)
        if self.kind == "delete":
            return DeleteOp(self.doc, self.ordinal)
        raise WorkloadError(f"unknown write kind {self.kind!r}")

    def describe(self) -> str:
        detail = ""
        if self.kind == "update":
            detail = f" {self.tag}={self.value}"
        elif self.kind == "insert":
            detail = f" {self.item_xml}"
        return f"{self.name} {self.kind} {self.doc}[{self.ordinal}]{detail}"


@dataclass
class Scenario:
    """A ready system plus its query workload and generation provenance."""

    seed: int
    index: int
    spec: ScenarioSpec
    topology: str
    system: AXMLSystem
    documents: List[GeneratedDocument]
    services: List[GeneratedService]
    queries: List[GeneratedQuery]
    #: Seeded write sequence (empty unless ``spec.writes > 0``); applied
    #: in order by the harness's write sweep.
    writes: List[GeneratedWrite] = field(default_factory=list)

    def query(self, name: str) -> GeneratedQuery:
        for query in self.queries:
            if query.name == name:
                return query
        raise WorkloadError(f"no generated query named {name!r}")

    def serialize(self) -> str:
        """Canonical text form of the whole scenario.

        Two scenarios generated from the same ``(seed, index, spec)`` are
        byte-identical here — the determinism contract the conformance
        tests pin down.  Everything observable is included: topology,
        link quality, peer speeds, full document trees, service sources,
        registry membership, and the query workload.
        """
        lines = [f"scenario seed={self.seed} index={self.index}"]
        spec_items = " ".join(
            f"{key}={value!r}" for key, value in sorted(self.spec.to_kwargs().items())
        )
        lines.append(f"spec {spec_items}")
        lines.append(f"topology {self.topology}")
        for peer_id in sorted(self.system.peers):
            peer = self.system.peer(peer_id)
            lines.append(f"peer {peer_id} speed={peer.compute_speed:.0f}")
        for link in sorted(
            self.system.network.links(), key=lambda l: (l.src, l.dst)
        ):
            lines.append(
                f"link {link.src}->{link.dst} "
                f"latency={link.latency:.6f} bandwidth={link.bandwidth:.0f}"
            )
        for peer_id in sorted(self.system.peers):
            peer = self.system.peer(peer_id)
            for doc_name in sorted(peer.documents):
                lines.append(
                    f"doc {doc_name}@{peer_id} {serialize(peer.documents[doc_name])}"
                )
        for service in self.services:
            lines.append(
                f"service {service.name}@{service.peer} {service.source}"
            )
        registry = self.system.registry
        for generic in sorted(
            doc.generic for doc in self.documents if doc.generic
        ):
            members = ", ".join(
                str(member) for member in registry.document_members(generic)
            )
            lines.append(f"generic {generic} -> {members}")
        for info in self.system.fragments:
            lines.append(f"fragmented {info.describe()}")
        for query in self.queries:
            binds = " ".join(f"{param}={target}" for param, target in query.bind)
            lines.append(f"query {query.name} shape={query.shape} at={query.at} {binds}")
            lines.append(f"  {query.source}")
        # write lines only appear for write-mix scenarios, so every
        # pre-existing spec serializes byte-identically
        for write in self.writes:
            lines.append(f"write {write.describe()}")
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        return (
            f"scenario#{self.index} (seed {self.seed}): "
            f"{len(self.system.peers)} peers on {self.topology}, "
            f"{len(self.documents)} docs, {len(self.services)} services, "
            f"{len(self.queries)} queries"
        )


class ScenarioGenerator:
    """Deterministic factory: ``(seed, index, spec) -> Scenario``.

    >>> gen = ScenarioGenerator(seed=7)
    >>> a = gen.scenario(0)
    >>> b = ScenarioGenerator(seed=7).scenario(0)
    >>> a.serialize() == b.serialize()
    True
    """

    def __init__(self, seed: int = 0, spec: Optional[ScenarioSpec] = None) -> None:
        self.seed = seed
        self.spec = spec or ScenarioSpec()
        self.spec.validate()

    def scenarios(
        self, count: int, start: int = 0, spec: Optional[ScenarioSpec] = None
    ) -> Iterator[Scenario]:
        """Lazily yield ``count`` scenarios with consecutive indices."""
        for index in range(start, start + count):
            yield self.scenario(index, spec)

    def scenario(self, index: int = 0, spec: Optional[ScenarioSpec] = None) -> Scenario:
        spec = spec or self.spec
        spec.validate()
        # one private stream per (seed, index): scenarios are independent
        # and insertion into a sweep never perturbs its neighbours.
        # (str seeding hashes via sha512, stable across processes/versions)
        rng = Random(f"{self.seed}:{index}")

        topology = spec.topology
        if topology == "any":
            topology = TOPOLOGIES[index % len(TOPOLOGIES)]
        peer_ids = [f"p{i}" for i in range(spec.peers)]
        network = self._build_network(rng, topology, peer_ids)
        system = AXMLSystem(network)
        for peer_id in peer_ids:
            system.add_peer(peer_id, compute_speed=rng.choice(_COMPUTE_SPEEDS))
        if spec.slow_peers:
            # gated draw: the knob at 0 consumes no randomness, so plain
            # scenarios stay byte-identical.  One sample draws the whole
            # correlated set — "the overloaded rack", not scattered picks.
            slowed = sorted(
                rng.sample(peer_ids, min(spec.slow_peers, len(peer_ids)))
            )
            for peer_id in slowed:
                peer = system.peers[peer_id]
                peer.compute_speed = peer.compute_speed / spec.slow_factor

        services = self._install_services(rng, spec, system, peer_ids)
        documents = self._install_documents(rng, spec, system, peer_ids, services)
        documents = self._fragment(rng, spec, system, peer_ids, documents)
        queries = self._generate_queries(rng, spec, documents, peer_ids)
        writes = self._generate_writes(rng, spec, system, documents)
        return Scenario(
            seed=self.seed,
            index=index,
            spec=spec,
            topology=topology,
            system=system,
            documents=documents,
            services=services,
            queries=queries,
            writes=writes,
        )

    # -- network -----------------------------------------------------------------
    def _build_network(
        self, rng: Random, topology: str, peer_ids: Sequence[str]
    ) -> Network:
        latency = rng.choice(_LATENCIES)
        bandwidth = rng.choice(_BANDWIDTHS)
        if topology == "mesh":
            return topo.full_mesh(peer_ids, latency, bandwidth)
        if topology == "star":
            return topo.star(peer_ids, latency=latency, bandwidth=bandwidth)
        if topology == "ring":
            if len(peer_ids) < 2:
                return topo.full_mesh(peer_ids, latency, bandwidth)
            return topo.ring(peer_ids, latency, bandwidth)
        if topology == "clustered":
            clusters = min(len(peer_ids), rng.choice((2, 3)))
            return topo.clustered(
                peer_ids,
                clusters=clusters,
                bridge_latency=latency * 2,
                bridge_bandwidth=bandwidth / 2,
            )
        raise WorkloadError(f"unknown topology {topology!r}")

    # -- services ----------------------------------------------------------------
    def _install_services(
        self,
        rng: Random,
        spec: ScenarioSpec,
        system: AXMLSystem,
        peer_ids: Sequence[str],
    ) -> List[GeneratedService]:
        """Declarative services closing over a private host document.

        Each service gets its own small backing document on its host
        peer, so delegating the service elsewhere is a genuine rewrite
        (the implementing query's ``doc()`` stays home-resolved).
        """
        services: List[GeneratedService] = []
        for k in range(spec.services):
            host = rng.choice(list(peer_ids))
            item_tag = rng.choice(_ITEM_TAGS)
            num_tag = rng.choice(_NUM_TAGS)
            backing = f"svcdoc{k}"
            n_items = rng.randint(2, max(2, spec.items // 2))
            tree = self._make_tree(
                rng, "store", item_tag, rng.choice(_NAME_TAGS), num_tag,
                n_items, spec.payload_words, spec.value_range,
            )
            system.peer(host).install_document(backing, tree)
            threshold = rng.randint(0, spec.value_range)
            source = (
                f'for $i in doc("{backing}")//{item_tag} '
                f"where $i/{num_tag} > {threshold} return $i"
            )
            system.peer(host).install_query_service(f"s{k}", source)
            services.append(GeneratedService(f"s{k}", host, source))
        return services

    # -- documents ---------------------------------------------------------------
    def _install_documents(
        self,
        rng: Random,
        spec: ScenarioSpec,
        system: AXMLSystem,
        peer_ids: Sequence[str],
        services: List[GeneratedService],
    ) -> List[GeneratedDocument]:
        documents: List[GeneratedDocument] = []
        total = spec.documents + spec.axml_documents
        for k in range(total):
            active = k >= spec.documents and bool(services)
            host = rng.choice(list(peer_ids))
            item_tag = rng.choice(_ITEM_TAGS)
            name_tag = rng.choice(_NAME_TAGS)
            num_tag = rng.choice(_NUM_TAGS)
            n_items = rng.randint(max(1, spec.items // 2), spec.items)
            tree = self._make_tree(
                rng, rng.choice(_ROOT_TAGS), item_tag, name_tag, num_tag,
                n_items, spec.payload_words, spec.value_range,
            )
            if active:
                service = rng.choice(services)
                tree.append(make_service_call(service.peer, service.name))
            name = f"d{k}"
            system.peer(host).install_document(name, tree)
            documents.append(
                GeneratedDocument(
                    name=name,
                    peer=host,
                    item_tag=item_tag,
                    name_tag=name_tag,
                    num_tag=num_tag,
                    n_items=n_items,
                    active=active,
                )
            )
        return self._replicate(rng, spec, system, peer_ids, documents)

    def _replicate(
        self,
        rng: Random,
        spec: ScenarioSpec,
        system: AXMLSystem,
        peer_ids: Sequence[str],
        documents: List[GeneratedDocument],
    ) -> List[GeneratedDocument]:
        """Mirror some plain documents and register the generic classes."""
        if spec.replicas == 0 or len(peer_ids) < 2:
            return documents
        # only passive documents replicate: an sc node firing on two
        # replicas would race the registry's equivalence promise.
        candidates = [doc for doc in documents if not doc.active]
        rng.shuffle(candidates)
        chosen = candidates[: spec.replicas]
        out: List[GeneratedDocument] = []
        for doc in documents:
            if doc not in chosen:
                out.append(doc)
                continue
            generic = f"g-{doc.name}"
            mirrors = [p for p in peer_ids if p != doc.peer]
            mirror_peer = rng.choice(mirrors)
            original = system.peer(doc.peer).document(doc.name)
            mirror_name = f"{doc.name}.r1"
            system.peer(mirror_peer).install_document(
                mirror_name, original.copy_without_ids()
            )
            system.registry.register_document(generic, doc.name, doc.peer)
            system.registry.register_document(generic, mirror_name, mirror_peer)
            out.append(replace(doc, generic=generic))
        return out

    def _fragment(
        self,
        rng: Random,
        spec: ScenarioSpec,
        system: AXMLSystem,
        peer_ids: Sequence[str],
        documents: List[GeneratedDocument],
    ) -> List[GeneratedDocument]:
        """The ``fragmented`` family: shard some passive documents.

        Chosen documents are split across 2–3 peers (never more than the
        document has items); the whole document stays installed at its
        home as the baseline the differential harness compares against.
        Only drawn from the rng when ``spec.fragments > 0``, so existing
        seeds reproduce byte-identically.
        """
        if spec.fragments == 0 or len(peer_ids) < 2:
            return documents
        candidates = [
            doc for doc in documents if not doc.active and not doc.generic
        ]
        rng.shuffle(candidates)
        chosen = {doc.name for doc in candidates[: spec.fragments]}
        fragmenter = Fragmenter(system)
        out: List[GeneratedDocument] = []
        for doc in documents:
            if doc.name not in chosen:
                out.append(doc)
                continue
            width = min(len(peer_ids), rng.choice((2, 3)), doc.n_items)
            across = rng.sample(list(peer_ids), width)
            replicas = min(spec.fragment_replicas, len(peer_ids) - 1)
            fragmenter.fragment(
                doc.name, doc.peer, across, replicas=replicas
            )
            out.append(replace(doc, fragmented=True))
        return out

    def _make_tree(
        self,
        rng: Random,
        root_tag: str,
        item_tag: str,
        name_tag: str,
        num_tag: str,
        n_items: int,
        payload_words: int,
        value_range: int,
    ) -> Element:
        root = element(root_tag)
        for i in range(n_items):
            payload = " ".join(
                rng.choice(_WORDS) for _ in range(payload_words)
            )
            item = element(
                item_tag,
                element(name_tag, f"{item_tag}-{i}"),
                element(num_tag, str(rng.randint(0, value_range))),
            )
            if payload_words:
                item.append(element("desc", payload))
            root.append(item)
        return root

    # -- queries -----------------------------------------------------------------
    def _generate_queries(
        self,
        rng: Random,
        spec: ScenarioSpec,
        documents: List[GeneratedDocument],
        peer_ids: Sequence[str],
    ) -> List[GeneratedQuery]:
        queries: List[GeneratedQuery] = []
        shapes = list(spec.query_shapes)
        for k in range(spec.queries):
            shape = shapes[k % len(shapes)]
            doc = rng.choice(documents)
            if shape == "join" and len(documents) < 2:
                shape = "filter"
            at = rng.choice(list(peer_ids))
            threshold = rng.randint(0, spec.value_range)
            bind: List[Tuple[str, str]] = [("d", self._target(rng, doc))]
            if shape == "project":
                source = f"for $x in $d//{doc.item_tag} return $x/{doc.name_tag}"
            elif shape == "filter":
                source = (
                    f"for $x in $d//{doc.item_tag} "
                    f"where $x/{doc.num_tag} > {threshold} return $x/{doc.name_tag}"
                )
            elif shape == "construct":
                source = (
                    f"for $x in $d//{doc.item_tag} "
                    f"where $x/{doc.num_tag} >= {threshold} "
                    f"return <hit>{{$x/{doc.name_tag}/text()}}</hit>"
                )
            elif shape == "let_filter":
                source = (
                    f"for $x in $d//{doc.item_tag} let $n := $x/{doc.name_tag} "
                    f"where $x/{doc.num_tag} > {threshold} return $n"
                )
            elif shape == "count":
                source = f"count($d//{doc.item_tag})"
            elif shape == "join":
                other = rng.choice([d for d in documents if d.name != doc.name])
                bind.append(("e", self._target(rng, other)))
                source = (
                    f"for $a in $d//{doc.item_tag}, $b in $e//{other.item_tag} "
                    f"where $a/{doc.num_tag} = $b/{other.num_tag} "
                    f"return $a/{doc.name_tag}"
                )
            else:  # pragma: no cover - spec.validate() rejects these
                raise WorkloadError(f"unknown query shape {shape!r}")
            queries.append(
                GeneratedQuery(
                    name=f"q{k}",
                    shape=shape,
                    source=source,
                    at=at,
                    bind=tuple(bind),
                )
            )
        return queries

    # -- writes ------------------------------------------------------------------
    def _generate_writes(
        self,
        rng: Random,
        spec: ScenarioSpec,
        system: AXMLSystem,
        documents: List[GeneratedDocument],
    ) -> List[GeneratedWrite]:
        """Seeded write sequence over the passive documents.

        Only drawn from the rng when ``spec.writes > 0``, so existing
        seeds reproduce byte-identically.  Ordinals are drawn against the
        running item count (earlier writes in the sequence shift later
        ones), and deletes never shrink a document below its fragment
        count — the rebuild-from-scratch baseline re-fragments with the
        original layout, which needs at least one item per target peer.
        Update values range up to twice ``value_range`` so refreshed
        ``(min, max)`` stats genuinely move (exercising prune soundness).
        """
        if spec.writes == 0:
            return []
        candidates = [doc for doc in documents if not doc.active]
        if not candidates:
            return []
        counts = {
            doc.name: len(system.peer(doc.peer).documents[doc.name].children)
            for doc in candidates
        }
        floors = {
            doc.name: (
                len(system.fragments.fragments(doc.name))
                if system.fragments.is_fragmented(doc.name)
                else 1
            )
            for doc in candidates
        }
        vocab = {doc.name: doc for doc in candidates}
        writes: List[GeneratedWrite] = []
        for k in range(spec.writes):
            doc = vocab[rng.choice(sorted(counts))]
            count = counts[doc.name]
            roll = rng.random()
            if roll < 0.4:
                kind = "insert"
            elif roll < 0.8:
                kind = "update"
            else:
                kind = "delete"
            if kind == "delete" and count - 1 < floors[doc.name]:
                kind = "update"
            if kind == "insert":
                ordinal = rng.randint(0, count)
                value = rng.randint(0, spec.value_range * 2)
                item = element(
                    doc.item_tag,
                    element(doc.name_tag, f"{doc.item_tag}-w{k}"),
                    element(doc.num_tag, str(value)),
                )
                writes.append(
                    GeneratedWrite(
                        name=f"w{k}",
                        doc=doc.name,
                        kind=kind,
                        ordinal=ordinal,
                        item_xml=serialize(item),
                    )
                )
                counts[doc.name] += 1
            elif kind == "update":
                ordinal = rng.randint(0, count - 1)
                value = rng.randint(0, spec.value_range * 2)
                writes.append(
                    GeneratedWrite(
                        name=f"w{k}",
                        doc=doc.name,
                        kind=kind,
                        ordinal=ordinal,
                        tag=doc.num_tag,
                        value=str(value),
                    )
                )
            else:
                ordinal = rng.randint(0, count - 1)
                writes.append(
                    GeneratedWrite(
                        name=f"w{k}", doc=doc.name, kind=kind, ordinal=ordinal
                    )
                )
                counts[doc.name] -= 1
        return writes

    def _target(self, rng: Random, doc: GeneratedDocument) -> str:
        """Concrete ``name@peer`` binding, or generic/fragmented views."""
        if doc.fragmented:
            return f"{doc.name}@dist"
        if doc.generic and rng.random() < 0.5:
            return f"{doc.generic}@any"
        return f"{doc.name}@{doc.peer}"


#: The ``fragmented`` scenario family: a wider peer set, two sharded
#: documents with one replica per fragment, and a query mix whose
#: fragmented bindings (``name@dist``) exercise scatter-gather on every
#: scenario.  The differential harness's fragmented sweep
#: (:meth:`~repro.workloads.harness.DifferentialHarness.check_fragmented`)
#: asserts the answers stay byte-identical to the whole-document
#: baseline under every strategy.
FRAGMENTED_SPEC = ScenarioSpec(
    peers=5,
    documents=3,
    axml_documents=1,
    items=14,
    services=1,
    replicas=0,
    queries=6,
    fragments=2,
    fragment_replicas=1,
)

#: The read/write-mix scenario family: fragmented + replicated documents
#: plus a generic-replicated one, with a seeded write sequence woven
#: through.  :meth:`~repro.workloads.harness.DifferentialHarness.check_writes`
#: asserts that applying the writes incrementally
#: (:meth:`Session.write <repro.session.Session.write>`) then querying is
#: byte-identical, under every strategy, to rebuilding each written
#: document from scratch and re-distributing it.
WRITE_MIX_SPEC = ScenarioSpec(
    peers=5,
    documents=3,
    axml_documents=1,
    items=14,
    services=1,
    replicas=1,
    queries=6,
    fragments=1,
    fragment_replicas=1,
    writes=6,
)

#: The chaos scenario family: fragmented + replicated + service-call
#: documents with a correlated slow peer and a flash-crowd knob —
#: everything the fault-injection layer can break, with enough copies
#: that recovery has somewhere to fail over to.  Query shapes are
#: restricted to the *monotone* subset (no ``count``): dropping a
#: fragment from a monotone query provably yields a subset of the
#: fault-free answer, which is the partial-answer invariant
#: :meth:`~repro.workloads.harness.DifferentialHarness.check_faults`
#: asserts.  (A count over a partial document would be a silently wrong
#: number, not a subset — exactly what graceful degradation must never
#: produce.)
CHAOS_SPEC = ScenarioSpec(
    peers=5,
    documents=3,
    axml_documents=1,
    items=12,
    services=1,
    replicas=1,
    queries=6,
    query_shapes=("project", "filter", "construct", "let_filter", "join"),
    fragments=1,
    fragment_replicas=1,
    slow_peers=1,
    flash_crowd=4.0,
)
