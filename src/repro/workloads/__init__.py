"""Procedural workloads and the differential conformance harness.

Two halves:

* :mod:`repro.workloads.generator` — :class:`ScenarioGenerator`, a
  seeded factory turning ``(seed, index, spec)`` into a complete
  distributed scenario: network topology, heterogeneous peers, plain and
  AXML documents (embedded service calls), declarative services,
  generic-document replicas, and an XQuery workload.  Fully
  deterministic: the same seed reproduces the same
  :meth:`Scenario.serialize` byte for byte.
* :mod:`repro.workloads.harness` — :class:`DifferentialHarness`, which
  runs every generated query through :class:`~repro.session.Session`
  under every registered optimizer strategy and asserts
  canonical-answer agreement plus cost monotonicity, recording any
  disagreement as a minimized, seed-reproducible repro script.

>>> from repro.workloads import DifferentialHarness, ScenarioGenerator
>>> scenario = ScenarioGenerator(seed=3).scenario(0)
>>> harness = DifferentialHarness(("beam", "greedy"), repro_dir=None)
>>> harness.check_scenario(scenario).ok
True
"""

from .generator import (
    CHAOS_SPEC,
    FRAGMENTED_SPEC,
    QUERY_SHAPES,
    TOPOLOGIES,
    WRITE_MIX_SPEC,
    GeneratedDocument,
    GeneratedQuery,
    GeneratedService,
    GeneratedWrite,
    Scenario,
    ScenarioGenerator,
    ScenarioSpec,
)
from .harness import (
    CostModelCheckResult,
    CostModelSweepReport,
    DEFAULT_COST_MODELS,
    DEFAULT_STRATEGIES,
    DifferentialHarness,
    FaultCheckResult,
    FaultSweepReport,
    FragmentedQueryResult,
    FragmentedSweepReport,
    HarnessReport,
    Mismatch,
    QueryDifferential,
    ScenarioReport,
    StrategyOutcome,
    WriteCheckResult,
    WriteSweepReport,
)

__all__ = [
    "ScenarioSpec",
    "ScenarioGenerator",
    "Scenario",
    "GeneratedDocument",
    "GeneratedService",
    "GeneratedQuery",
    "GeneratedWrite",
    "TOPOLOGIES",
    "QUERY_SHAPES",
    "CHAOS_SPEC",
    "FRAGMENTED_SPEC",
    "WRITE_MIX_SPEC",
    "DifferentialHarness",
    "HarnessReport",
    "ScenarioReport",
    "QueryDifferential",
    "StrategyOutcome",
    "Mismatch",
    "FragmentedQueryResult",
    "FragmentedSweepReport",
    "WriteCheckResult",
    "WriteSweepReport",
    "FaultCheckResult",
    "FaultSweepReport",
    "CostModelCheckResult",
    "CostModelSweepReport",
    "DEFAULT_STRATEGIES",
    "DEFAULT_COST_MODELS",
]
