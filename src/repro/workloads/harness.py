"""Differential conformance: strategies cross-check each other at scale.

Every registered optimizer strategy searches the *same* rewrite space, so
for any query all of them must produce plans with canonically-equal
answers — the optimizer and evaluator become their own test oracle (in
the spirit of implementation-validation work where independent
computation paths are compared, no hand-written expected outputs
needed).  :class:`DifferentialHarness` runs each generated query through
:class:`~repro.session.Session` under every strategy and checks:

* **answer agreement** — the answer forests, compared as multisets of
  canonical forms (:func:`repro.xmlcore.canon.canonical_form`, the
  paper's unordered tree model);
* **cost monotonicity** — no strategy ever returns a plan it scored
  worse than the original (``best_cost <= original_cost``), i.e. the
  improvement ratio is never below 1.

Disagreements become :class:`Mismatch` records: the harness first
*minimizes* the scenario (shrinking document sizes while the mismatch
reproduces) and then writes a standalone repro script that rebuilds the
exact failing scenario from its seed — ``python <script>`` exits 1 while
the bug exists and 0 once fixed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.cost import Cost, CostEstimator, measure
from ..core.planspace import CacheStats, PlanCache
from ..core.strategies import improvement_ratio
from ..errors import (
    DifferentialMismatchError,
    FaultError,
    FragmentUnavailableError,
    GenericResolutionError,
    PeerDownError,
    WorkloadError,
)
from ..faults import FaultActor, FaultPlan, FaultSpec, RetryPolicy
from ..session import Session
from ..xmlcore.canon import canonical_form
from .generator import GeneratedQuery, Scenario, ScenarioGenerator, ScenarioSpec

__all__ = [
    "StrategyOutcome",
    "QueryDifferential",
    "ScenarioReport",
    "HarnessReport",
    "Mismatch",
    "FragmentedQueryResult",
    "FragmentedSweepReport",
    "WriteCheckResult",
    "WriteSweepReport",
    "FaultCheckResult",
    "FaultSweepReport",
    "CostModelCheckResult",
    "CostModelSweepReport",
    "DifferentialHarness",
    "DEFAULT_STRATEGIES",
    "DEFAULT_COST_MODELS",
]

DEFAULT_STRATEGIES: Tuple[str, ...] = ("beam", "greedy", "exhaustive")

#: Cost models the parity sweep cross-checks; the first is the reference
#: (the oracle — its answers define correctness for the others).
DEFAULT_COST_MODELS: Tuple[str, ...] = ("oracle", "analytic", "hybrid")

#: Default per-strategy options: exhaustive is bounded tighter than its
#: factory default so 50-scenario sweeps stay affordable.
DEFAULT_STRATEGY_OPTIONS: Dict[str, Dict[str, object]] = {
    "exhaustive": {"depth": 3, "max_plans": 256},
}

_COST_EPS = 1e-9


@dataclass
class StrategyOutcome:
    """One strategy's verdict on one query."""

    strategy: str
    #: Canonical multiset of the answer forest (sorted reprs).
    answers: Tuple[str, ...]
    original_cost: Cost
    best_cost: Cost
    explored: int

    @property
    def improvement(self) -> float:
        """See :func:`repro.core.strategies.improvement_ratio`."""
        return improvement_ratio(self.original_cost, self.best_cost)

    @property
    def monotonic(self) -> bool:
        """The chosen plan is never scored worse than the original."""
        return self.best_cost.scalar() <= self.original_cost.scalar() + _COST_EPS


@dataclass
class Mismatch:
    """A differential failure, minimized and reproducible from its seed.

    ``spec``, ``query`` and ``answers`` all describe the *same* scenario:
    when minimization shrank the original, the disagreeing strategies
    were re-run on the shrunk scenario and those answers recorded.
    """

    seed: int
    index: int
    spec: ScenarioSpec
    query: GeneratedQuery
    #: strategy -> canonical answers on the recorded (possibly shrunk)
    #: scenario, for the disagreeing strategies at least.
    answers: Dict[str, Tuple[str, ...]]
    #: The two strategies exhibiting the disagreement.
    strategies: Tuple[str, str]
    #: Per-strategy factory options the harness searched with — the repro
    #: script re-applies them so bounded searches reproduce faithfully.
    strategy_options: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: repr of the harness's pick policy when one was set (policies are
    #: not serializable; the repro script warns it must be re-applied).
    pick_policy_note: Optional[str] = None
    repro_path: Optional[str] = None

    def describe(self) -> str:
        a, b = self.strategies
        lines = [
            f"mismatch on query {self.query.name!r} ({self.query.shape}) of "
            f"scenario seed={self.seed} index={self.index}: "
            f"{a!r} vs {b!r} disagree",
            f"  {a}: {len(self.answers[a])} answers",
            f"  {b}: {len(self.answers[b])} answers",
        ]
        if self.repro_path:
            lines.append(f"  repro: {self.repro_path}")
        return "\n".join(lines)

    def repro_script(self) -> str:
        """Standalone script reproducing exactly this disagreement."""
        strategies = tuple(sorted(self.answers))
        policy_warning = ""
        if self.pick_policy_note:
            policy_warning = (
                f'\nprint("WARNING: the harness ran with pick_policy='
                f'{self.pick_policy_note}; re-apply it for a faithful repro")\n'
            )
        return _REPRO_TEMPLATE.format(
            query=self.query.name,
            shape=self.query.shape,
            pair=" vs ".join(self.strategies),
            seed=self.seed,
            index=self.index,
            spec_kwargs=repr(self.spec.to_kwargs()),
            strategies=strategies,
            strategy_options=repr(self.strategy_options),
            policy_warning=policy_warning,
        )


_REPRO_TEMPLATE = '''#!/usr/bin/env python3
"""Auto-generated differential repro (minimized).

Optimizer strategies disagreed on the answers of generated query
{query!r} (shape {shape!r}): {pair}.  This script rebuilds the exact
scenario from its seed and re-runs the query under every strategy;
it exits 1 while the disagreement reproduces and 0 once it is fixed.
"""

import sys

from repro.session import Session
from repro.workloads import ScenarioGenerator, ScenarioSpec
from repro.xmlcore.canon import canonical_form

SEED = {seed}
INDEX = {index}
SPEC = ScenarioSpec(**{spec_kwargs})
QUERY = {query!r}
STRATEGIES = {strategies!r}
# search bounds the harness used — without them a disagreement that only
# shows under a bounded search would falsely "not reproduce"
STRATEGY_OPTIONS = {strategy_options}
{policy_warning}
scenario = ScenarioGenerator(seed=SEED).scenario(INDEX, spec=SPEC)
query = scenario.query(QUERY)
answers = {{}}
for strategy in STRATEGIES:
    session = Session(
        scenario.system,
        strategy=strategy,
        strategy_options=STRATEGY_OPTIONS.get(strategy),
    )
    report = session.query(**query.kwargs())
    answers[strategy] = sorted(repr(canonical_form(i)) for i in report.items)
    print(f"{{strategy:12s}} {{len(answers[strategy])}} answers")

reference = answers[STRATEGIES[0]]
if all(candidate == reference for candidate in answers.values()):
    print("all strategies agree - mismatch no longer reproduces")
    sys.exit(0)
for strategy, candidate in answers.items():
    if candidate != reference:
        print(f"MISMATCH: {{STRATEGIES[0]}} vs {{strategy}}")
        print(f"  {{STRATEGIES[0]}}: {{reference}}")
        print(f"  {{strategy}}: {{candidate}}")
sys.exit(1)
'''


@dataclass
class QueryDifferential:
    """All strategies' outcomes for one query, plus the verdicts."""

    query: GeneratedQuery
    outcomes: Dict[str, StrategyOutcome]
    mismatch: Optional[Mismatch] = None

    @property
    def agreed(self) -> bool:
        return self.mismatch is None

    @property
    def monotonic(self) -> bool:
        return all(outcome.monotonic for outcome in self.outcomes.values())

    @property
    def ok(self) -> bool:
        return self.agreed and self.monotonic


@dataclass
class ScenarioReport:
    """Differential results for every query of one scenario."""

    scenario: Scenario
    results: List[QueryDifferential] = field(default_factory=list)
    #: Plan-cache counters for the scenario's shared transposition table
    #: (``None`` when the harness ran with ``share_plan_cache=False``).
    cache_stats: Optional[CacheStats] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def mismatches(self) -> List[Mismatch]:
        return [r.mismatch for r in self.results if r.mismatch is not None]

    def describe(self) -> str:
        verdict = "ok" if self.ok else "MISMATCH"
        explored = sum(
            outcome.explored
            for result in self.results
            for outcome in result.outcomes.values()
        )
        line = (
            f"{self.scenario.describe()}: {verdict} "
            f"({len(self.results)} queries, {explored} plans scored)"
        )
        if self.cache_stats is not None and self.cache_stats.cost_hits:
            line += f" [{self.cache_stats.describe()}]"
        return line


@dataclass
class HarnessReport:
    """Aggregate over a sweep of scenarios."""

    reports: List[ScenarioReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def mismatches(self) -> List[Mismatch]:
        return [m for report in self.reports for m in report.mismatches]

    @property
    def queries_checked(self) -> int:
        return sum(len(report.results) for report in self.reports)

    @property
    def plans_explored(self) -> int:
        return sum(
            outcome.explored
            for report in self.reports
            for result in report.results
            for outcome in result.outcomes.values()
        )

    @property
    def cost_calls_saved(self) -> int:
        """Cost-function invocations the shared plan caches absorbed."""
        return sum(
            report.cache_stats.cost_hits
            for report in self.reports
            if report.cache_stats is not None
        )

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        saved = self.cost_calls_saved
        saved_note = f", {saved} cost calls saved" if saved else ""
        lines = [
            f"differential sweep: {len(self.reports)} scenarios, "
            f"{self.queries_checked} queries, {self.plans_explored} plans "
            f"scored{saved_note} -> {verdict}"
        ]
        for mismatch in self.mismatches:
            lines.append(mismatch.describe())
        return "\n".join(lines)


@dataclass
class FragmentedQueryResult:
    """One fragmented query vs its whole-document baseline.

    ``baseline_answers`` are the *serialized* answers (byte form, order
    kept) of the query with every ``@dist`` binding rewritten to the
    concrete ``@home`` document; ``answers`` maps each strategy to its
    serialized answers over the fragmented binding.  The contract is
    byte equality, stronger than the canonical-multiset agreement of the
    plain differential check: fragmentation must be invisible.
    """

    query: GeneratedQuery
    baseline_answers: Tuple[str, ...]
    answers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(
            candidate == self.baseline_answers
            for candidate in self.answers.values()
        )

    @property
    def disagreeing(self) -> List[str]:
        return sorted(
            name for name, candidate in self.answers.items()
            if candidate != self.baseline_answers
        )


@dataclass
class FragmentedSweepReport:
    """Aggregate byte-equality verdict over a fragmented sweep."""

    scenarios: int = 0
    results: List[FragmentedQueryResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def queries_checked(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[FragmentedQueryResult]:
        return [result for result in self.results if not result.ok]

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"fragmented sweep: {self.scenarios} scenarios, "
            f"{self.queries_checked} fragmented queries -> {verdict}"
        ]
        for failure in self.failures:
            lines.append(
                f"  query {failure.query.name!r} ({failure.query.shape}): "
                f"{', '.join(failure.disagreeing)} diverged from the "
                "whole-document baseline"
            )
        return "\n".join(lines)


@dataclass
class WriteCheckResult:
    """One query over incrementally-written state vs the rebuilt baseline.

    ``baseline_answers`` are the serialized answers after *rebuilding
    from scratch*: the scenario's write sequence applied to each written
    document's whole tree, then all distributed state (fragments,
    mirrors, catalog entries) dropped and re-derived from the rebuilt
    tree.  ``answers`` maps each strategy to its answers after applying
    the same writes *incrementally* through
    :meth:`Session.write <repro.session.Session.write>`.  The contract
    is byte equality: incremental maintenance must be invisible.
    """

    query: GeneratedQuery
    baseline_answers: Tuple[str, ...]
    answers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(
            candidate == self.baseline_answers
            for candidate in self.answers.values()
        )

    @property
    def disagreeing(self) -> List[str]:
        return sorted(
            name for name, candidate in self.answers.items()
            if candidate != self.baseline_answers
        )


@dataclass
class WriteSweepReport:
    """Aggregate byte-equality verdict over a read/write-mix sweep."""

    scenarios: int = 0
    writes_applied: int = 0
    results: List[WriteCheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def queries_checked(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> List[WriteCheckResult]:
        return [result for result in self.results if not result.ok]

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        lines = [
            f"write sweep: {self.scenarios} scenarios, "
            f"{self.writes_applied} writes applied, "
            f"{self.queries_checked} queries -> {verdict}"
        ]
        for failure in self.failures:
            lines.append(
                f"  query {failure.query.name!r} ({failure.query.shape}): "
                f"{', '.join(failure.disagreeing)} diverged from the "
                "rebuild-from-scratch baseline"
            )
        return "\n".join(lines)


#: Verdicts that satisfy the three-way fault invariant: a faulted run may
#: match the fault-free answer exactly, degrade to a provable subset of
#: it (with a :class:`~repro.faults.PartialAnswer` attached), or fail
#: with a *typed* error — never anything else.
FAULT_OK_VERDICTS = frozenset({"identical", "partial-subset", "typed-error"})


def _canonical_counts(items) -> Dict[str, int]:
    """The canonical multiset of an answer forest, as repr -> count."""
    counts: Dict[str, int] = {}
    for item in items:
        key = repr(canonical_form(item))
        counts[key] = counts.get(key, 0) + 1
    return counts


def _is_subset(counts: Dict[str, int], reference: Dict[str, int]) -> bool:
    return all(
        count <= reference.get(key, 0) for key, count in counts.items()
    )


def _classify_fault_job(job, reference, fault_seed, strategy):
    """One faulted job against its fault-free reference answer."""
    from ..engine.jobs import DONE, FAILED

    if reference is None:
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="baseline-missing",
            detail="fault-free run produced no answer to compare against",
        )
    if job.status == FAILED:
        if isinstance(job.error, FAULT_TYPED_ERRORS):
            return FaultCheckResult(
                job=job.name,
                fault_seed=fault_seed,
                strategy=strategy,
                verdict="typed-error",
                detail=type(job.error).__name__,
            )
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="untyped-error",
            detail=f"{type(job.error).__name__}: {job.error}",
        )
    if job.status != DONE or job.report is None:
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="unsettled",
            detail=f"status {job.status!r} after drain",
        )
    counts = _canonical_counts(job.report.items)
    if counts == reference:
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="identical",
        )
    partial = getattr(job, "partial", None)
    if partial is not None and _is_subset(counts, reference):
        lost = len(getattr(partial, "lost", ()) or ())
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="partial-subset",
            detail=f"{sum(counts.values())}/{sum(reference.values())} "
            f"answers, {lost} parts lost",
        )
    if partial is not None:
        return FaultCheckResult(
            job=job.name,
            fault_seed=fault_seed,
            strategy=strategy,
            verdict="partial-superset",
            detail="partial answer contains items the fault-free run lacks",
        )
    return FaultCheckResult(
        job=job.name,
        fault_seed=fault_seed,
        strategy=strategy,
        verdict="silent-mismatch",
        detail=f"{sum(counts.values())} answers vs "
        f"{sum(reference.values())} fault-free, no partial marker",
    )

#: Exception types a faulted job is *allowed* to fail with.  Anything
#: outside this taxonomy (a ``KeyError`` escaping the evaluator, say) is
#: an invariant violation, not graceful degradation.
FAULT_TYPED_ERRORS = (
    FaultError,
    FragmentUnavailableError,
    GenericResolutionError,
    PeerDownError,
)


@dataclass
class FaultCheckResult:
    """One served job of one (fault seed, strategy) cell, classified.

    ``verdict`` is one of:

    * ``identical`` — the answer's canonical multiset equals the
      fault-free run's (retries healed everything);
    * ``partial-subset`` — the job degraded to a
      :class:`~repro.faults.PartialAnswer` and its answer is a strict
      canonical-multiset subset of the fault-free answer;
    * ``typed-error`` — the job failed with an error from the
      :data:`FAULT_TYPED_ERRORS` taxonomy;
    * anything else (``silent-mismatch``, ``partial-superset``,
      ``untyped-error``, ``unsettled``, ``baseline-missing``) — an
      invariant violation.
    """

    job: str
    fault_seed: int
    strategy: str
    verdict: str
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.verdict in FAULT_OK_VERDICTS

    def describe(self) -> str:
        line = (
            f"job {self.job!r} [seed={self.fault_seed} {self.strategy}]: "
            f"{self.verdict}"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class FaultSweepReport:
    """Aggregate three-way-invariant verdict over a chaos sweep."""

    scenarios: int = 0
    #: (scenario x fault seed x strategy) faulted serving runs.
    cells: int = 0
    results: List[FaultCheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violations(self) -> List[FaultCheckResult]:
        return [result for result in self.results if not result.ok]

    @property
    def verdicts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.verdict] = counts.get(result.verdict, 0) + 1
        return counts

    def describe(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.violations)} VIOLATIONS"
        mix = ", ".join(
            f"{name}: {count}" for name, count in sorted(self.verdicts.items())
        )
        lines = [
            f"fault sweep: {self.scenarios} scenarios, {self.cells} faulted "
            f"runs, {len(self.results)} jobs checked -> {verdict}"
            + (f" [{mix}]" if mix else "")
        ]
        for violation in self.violations:
            lines.append(f"  {violation.describe()}")
        return "\n".join(lines)


@dataclass
class CostModelCheckResult:
    """One (query, strategy) cell run under every cost model.

    ``answers`` maps each cost-model name to the *serialized* answers
    (byte form, order kept) the session produced; the contract is byte
    equality against the reference model (the first in the sweep's
    model list, normally ``oracle``): how candidates were *priced*
    during the search must never change what the chosen plan *answers*.
    """

    query: GeneratedQuery
    strategy: str
    answers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    reference: str = "oracle"

    @property
    def ok(self) -> bool:
        baseline = self.answers.get(self.reference, ())
        return all(candidate == baseline for candidate in self.answers.values())

    @property
    def disagreeing(self) -> List[str]:
        baseline = self.answers.get(self.reference, ())
        return sorted(
            name for name, candidate in self.answers.items()
            if candidate != baseline
        )


@dataclass
class CostModelSweepReport:
    """Aggregate verdict of the cost-model parity sweep.

    Two invariants, per generated query:

    * **byte-identical answers** — every cost model, under every
      strategy, serializes the same answers as the oracle reference;
    * **bounded estimates** — the analytic estimate of the naive plan
      stays within ``max_ratio`` of the oracle measurement in *both*
      directions (``ratios`` records estimate/oracle per query).  A
      wildly-off estimate may still pick the right plan by luck; the
      ratio bound catches the model drifting even when the ranking
      survives.
    """

    scenarios: int = 0
    max_ratio: float = 100.0
    results: List[CostModelCheckResult] = field(default_factory=list)
    #: Per-query scalar ratio (analytic estimate / oracle measurement)
    #: of the naive plan, 1.0 meaning a perfect estimate.
    ratios: List[float] = field(default_factory=list)

    @property
    def answers_ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def ratios_ok(self) -> bool:
        return all(
            1.0 / self.max_ratio <= ratio <= self.max_ratio
            for ratio in self.ratios
        )

    @property
    def ok(self) -> bool:
        return self.answers_ok and self.ratios_ok

    @property
    def failures(self) -> List[CostModelCheckResult]:
        return [result for result in self.results if not result.ok]

    def describe(self) -> str:
        verdict = "ok" if self.ok else (
            f"{len(self.failures)} answer failures"
            if not self.answers_ok else "estimate ratio out of bounds"
        )
        worst = max(
            (max(r, 1.0 / r) for r in self.ratios if r > 0), default=1.0
        )
        lines = [
            f"cost-model sweep: {self.scenarios} scenarios, "
            f"{len(self.results)} cells, worst estimate ratio "
            f"{worst:.2f}x -> {verdict}"
        ]
        for failure in self.failures:
            lines.append(
                f"  query {failure.query.name!r} [{failure.strategy}]: "
                f"{', '.join(failure.disagreeing)} diverged from "
                f"{failure.reference!r}"
            )
        return "\n".join(lines)


class DifferentialHarness:
    """Run queries under every strategy and assert they agree.

    Parameters
    ----------
    strategies:
        Registered strategy names to cross-check (at least two).
    strategy_options:
        Per-strategy factory options, merged over
        :data:`DEFAULT_STRATEGY_OPTIONS`.
    repro_dir:
        Where mismatch repro scripts land (created on demand).  ``None``
        disables script writing.
    minimize:
        Shrink mismatching scenarios (halving document sizes while the
        disagreement still reproduces) before recording them.
    share_plan_cache:
        When true (default), every (query, strategy) cell of one
        scenario shares one
        :class:`~repro.core.planspace.PlanCache`: the strategies search
        the same rewrite space over the same (never-mutated, isolated)
        Σ, so each distinct plan is costed and rule-expanded once for
        the whole scenario instead of once per strategy.  The cache is
        scoped strictly per scenario — a *shrunk* scenario regenerates
        the same peer and document names with different contents, so
        sharing across scenarios would serve stale costs.
    """

    def __init__(
        self,
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        strategy_options: Optional[Mapping[str, Mapping[str, object]]] = None,
        pick_policy=None,
        repro_dir: Optional[str] = "workload-repros",
        minimize: bool = True,
        share_plan_cache: bool = True,
    ) -> None:
        if len(strategies) < 2:
            raise WorkloadError(
                "differential checking needs at least two strategies"
            )
        self.strategies = tuple(strategies)
        options: Dict[str, Dict[str, object]] = {
            name: dict(opts) for name, opts in DEFAULT_STRATEGY_OPTIONS.items()
        }
        for name, opts in dict(strategy_options or {}).items():
            options[name] = dict(opts)
        self.strategy_options = options
        self.pick_policy = pick_policy
        self.repro_dir = repro_dir
        self.minimize = minimize
        self.share_plan_cache = share_plan_cache

    # -- running -----------------------------------------------------------------
    def run_query(
        self,
        scenario: Scenario,
        query: GeneratedQuery,
        strategy: str,
        plan_cache: Optional[PlanCache] = None,
    ) -> StrategyOutcome:
        """One (query, strategy) cell: run through the façade, canonicalize.

        ``plan_cache`` shares a transposition table with other cells of
        the same scenario; without one the session keeps a private cache.
        """
        session = Session(
            scenario.system,
            strategy=strategy,
            strategy_options=self.strategy_options.get(strategy),
            pick_policy=self.pick_policy,
            plan_cache=plan_cache if plan_cache is not None else "auto",
        )
        report = session.query(**query.kwargs())
        answers = tuple(
            sorted(repr(canonical_form(item)) for item in report.items)
        )
        return StrategyOutcome(
            strategy=strategy,
            answers=answers,
            original_cost=report.original_cost,
            best_cost=report.best_cost,
            explored=report.explored,
        )

    def check_query(
        self,
        scenario: Scenario,
        query: GeneratedQuery,
        plan_cache: Optional[PlanCache] = None,
    ) -> QueryDifferential:
        if plan_cache is None and self.share_plan_cache:
            plan_cache = PlanCache()
        outcomes = {
            strategy: self.run_query(scenario, query, strategy, plan_cache)
            for strategy in self.strategies
        }
        result = QueryDifferential(query=query, outcomes=outcomes)
        disagreement = self._find_disagreement(outcomes)
        if disagreement is not None:
            result.mismatch = self._record_mismatch(scenario, query, outcomes, disagreement)
        return result

    def check_scenario(self, scenario: Scenario) -> ScenarioReport:
        report = ScenarioReport(scenario=scenario)
        plan_cache = PlanCache() if self.share_plan_cache else None
        for query in scenario.queries:
            report.results.append(
                self.check_query(scenario, query, plan_cache)
            )
        report.cache_stats = (
            plan_cache.stats.copy() if plan_cache is not None else None
        )
        return report

    def check(
        self, scenarios: Iterable[Scenario], raise_on_mismatch: bool = False
    ) -> HarnessReport:
        """Sweep scenarios; optionally raise on the first disagreement."""
        report = HarnessReport()
        for scenario in scenarios:
            scenario_report = self.check_scenario(scenario)
            report.reports.append(scenario_report)
            if raise_on_mismatch and not scenario_report.ok:
                mismatches = scenario_report.mismatches
                detail = (
                    mismatches[0].describe()
                    if mismatches
                    else f"non-monotonic cost in {scenario.describe()}"
                )
                raise DifferentialMismatchError(
                    detail, mismatches[0] if mismatches else None
                )
        return report

    # -- fragmented sweeps ---------------------------------------------------------
    def check_fragmented_query(
        self,
        scenario: Scenario,
        query: GeneratedQuery,
        plan_cache: Optional[PlanCache] = None,
    ) -> FragmentedQueryResult:
        """Byte-compare one fragmented query against its baseline.

        The baseline rewrites every ``@dist`` binding to the concrete
        whole document at its home peer (the generator keeps it
        installed), runs it once under the reference strategy, and the
        fragmented binding runs under *every* strategy; all serialized
        answer lists must be byte-identical, order included.
        """
        homes = {doc.name: doc.peer for doc in scenario.documents}
        baseline_bind: Dict[str, str] = {}
        for param, target in query.bind:
            name, _, peer = target.rpartition("@")
            if peer == "dist":
                baseline_bind[param] = f"{name}@{homes[name]}"
            else:
                baseline_bind[param] = target
        reference = self.strategies[0]
        baseline_session = Session(
            scenario.system,
            strategy=reference,
            strategy_options=self.strategy_options.get(reference),
            pick_policy=self.pick_policy,
        )
        baseline = baseline_session.query(
            query.source, query.at, bind=baseline_bind, name=query.name
        )
        result = FragmentedQueryResult(
            query=query, baseline_answers=tuple(baseline.answers)
        )
        if plan_cache is None and self.share_plan_cache:
            plan_cache = PlanCache()
        for strategy in self.strategies:
            session = Session(
                scenario.system,
                strategy=strategy,
                strategy_options=self.strategy_options.get(strategy),
                pick_policy=self.pick_policy,
                plan_cache=plan_cache if plan_cache is not None else "auto",
            )
            report = session.query(**query.kwargs())
            result.answers[strategy] = tuple(report.answers)
        return result

    def check_fragmented(
        self,
        scenarios: Iterable[Scenario],
        raise_on_mismatch: bool = False,
    ) -> FragmentedSweepReport:
        """Sweep scenarios, byte-checking every ``@dist``-bound query.

        Queries without a fragmented binding are skipped here (the plain
        :meth:`check` sweep already covers them); a scenario generated
        from a spec with ``fragments=0`` contributes nothing.
        """
        report = FragmentedSweepReport()
        for scenario in scenarios:
            report.scenarios += 1
            plan_cache = PlanCache() if self.share_plan_cache else None
            for query in scenario.queries:
                if not any(t.endswith("@dist") for _, t in query.bind):
                    continue
                result = self.check_fragmented_query(scenario, query, plan_cache)
                report.results.append(result)
                if raise_on_mismatch and not result.ok:
                    raise DifferentialMismatchError(
                        f"fragmented answers diverged from the baseline on "
                        f"query {query.name!r} of scenario "
                        f"seed={scenario.seed} index={scenario.index} "
                        f"(strategies: {', '.join(result.disagreeing)})"
                    )
        return report

    # -- write sweeps ----------------------------------------------------------------
    def check_writes_scenario(self, scenario: Scenario) -> List[WriteCheckResult]:
        """Byte-compare incremental writes against rebuild-from-scratch.

        The *incremental* side clones the pristine scenario system once
        per strategy, applies the write sequence through
        :meth:`Session.write <repro.session.Session.write>` (primary-copy
        routing, replica deltas, catalog stats refresh, epoch-keyed
        cache invalidation — the whole production path), then runs every
        scenario query.  The *baseline* side rebuilds each written
        document's whole tree with :func:`repro.writes.apply_to_tree`,
        drops all derived distributed state and re-fragments /
        re-mirrors from scratch, then runs the queries under the
        reference strategy.  Both sides must serialize byte-identically
        on every query — the two can only differ through distribution
        machinery, which is exactly what the check targets.
        """
        rebuilt = self._rebuild_after_writes(scenario)
        reference = self.strategies[0]
        baseline_session = Session(
            rebuilt,
            strategy=reference,
            strategy_options=self.strategy_options.get(reference),
            pick_policy=self.pick_policy,
        )
        results = {}
        for query in scenario.queries:
            baseline = baseline_session.query(**query.kwargs())
            results[query.name] = WriteCheckResult(
                query=query, baseline_answers=tuple(baseline.answers)
            )
        for strategy in self.strategies:
            written = scenario.system.clone()
            session = Session(
                written,
                strategy=strategy,
                strategy_options=self.strategy_options.get(strategy),
                pick_policy=self.pick_policy,
            )
            for record in scenario.writes:
                session.write(record.op())
            for query in scenario.queries:
                report = session.query(**query.kwargs())
                results[query.name].answers[strategy] = tuple(report.answers)
        return [results[query.name] for query in scenario.queries]

    def check_writes(
        self,
        scenarios: Iterable[Scenario],
        raise_on_mismatch: bool = False,
    ) -> WriteSweepReport:
        """Sweep scenarios, byte-checking write-then-query vs rebuild.

        Scenarios without writes (``spec.writes=0``) contribute nothing.
        """
        report = WriteSweepReport()
        for scenario in scenarios:
            if not scenario.writes:
                continue
            report.scenarios += 1
            report.writes_applied += len(scenario.writes)
            for result in self.check_writes_scenario(scenario):
                report.results.append(result)
                if raise_on_mismatch and not result.ok:
                    raise DifferentialMismatchError(
                        f"write-then-query diverged from rebuild on query "
                        f"{result.query.name!r} of scenario "
                        f"seed={scenario.seed} index={scenario.index} "
                        f"(strategies: {', '.join(result.disagreeing)})"
                    )
        return report

    def _rebuild_after_writes(self, scenario: Scenario):
        """The from-scratch baseline system for a write-mix scenario.

        Clones the pristine system, applies every write to each written
        document's whole tree at its home, then re-derives all
        distributed state from that tree: fragments are dropped and
        re-fragmented over the same peers with the same replica count,
        and whole-document mirrors are re-installed from fresh copies.
        """
        from ..dist.fragmenter import Fragmenter
        from ..writes import apply_to_tree

        system = scenario.system.clone()
        homes = {doc.name: doc.peer for doc in scenario.documents}
        generics = {doc.name: doc.generic for doc in scenario.documents}
        written: List[str] = []
        for record in scenario.writes:
            if record.doc not in written:
                written.append(record.doc)
        for name in written:
            home = homes[name]
            tree = system.peer(home).documents[name]
            for record in scenario.writes:
                if record.doc == name:
                    apply_to_tree(tree, record.op())
            system.peer(home).allocator.assign(tree)
            if system.fragments.is_fragmented(name):
                fragments = system.fragments.fragments(name)
                across = [fragment.home for fragment in fragments]
                replicas = len(fragments[0].replicas) if fragments else 0
                for fragment in fragments:
                    for pid in fragment.peers:
                        if system.peer(pid).has_document(fragment.name):
                            system.peer(pid).drop_document(fragment.name)
                    if fragment.generic:
                        for member in list(
                            system.registry.document_members(fragment.generic)
                        ):
                            system.registry.unregister_document(
                                fragment.generic, member.name, member.peer
                            )
                system.fragments.drop(name)
                Fragmenter(system).fragment(name, home, across, replicas=replicas)
            generic = generics.get(name)
            if generic:
                for member in system.registry.document_members(generic):
                    if member.name == name and member.peer == home:
                        continue
                    system.peer(member.peer).install_document(
                        member.name, tree.copy_without_ids(), replace=True
                    )
        return system

    # -- cost-model sweeps -----------------------------------------------------------
    def check_cost_models_scenario(
        self,
        scenario: Scenario,
        cost_models: Sequence[str] = DEFAULT_COST_MODELS,
        report: Optional[CostModelSweepReport] = None,
    ) -> CostModelSweepReport:
        """Parity-check every cost model on one scenario (see sweep doc)."""
        report = report if report is not None else CostModelSweepReport()
        reference = cost_models[0]
        probe = Session(scenario.system, pick_policy=self.pick_policy)
        estimator = CostEstimator(scenario.system, pick_policy=self.pick_policy)
        for query in scenario.queries:
            plan = probe.plan(**query.kwargs())
            exact = measure(plan, scenario.system, self.pick_policy)
            estimate = estimator.estimate(plan)
            if exact.scalar() > 0:
                report.ratios.append(estimate.scalar() / exact.scalar())
            for strategy in self.strategies:
                # one cache per cell-row: the models salt their entries,
                # so sharing is safe — and exactly what sessions do
                plan_cache = PlanCache() if self.share_plan_cache else None
                result = CostModelCheckResult(
                    query=query, strategy=strategy, reference=reference
                )
                for model in cost_models:
                    session = Session(
                        scenario.system,
                        strategy=strategy,
                        strategy_options=self.strategy_options.get(strategy),
                        pick_policy=self.pick_policy,
                        cost_model=model,
                        plan_cache=plan_cache if plan_cache is not None else "auto",
                    )
                    cell = session.query(**query.kwargs())
                    result.answers[model] = tuple(cell.answers)
                report.results.append(result)
        return report

    def check_cost_models(
        self,
        scenarios: Iterable[Scenario],
        cost_models: Sequence[str] = DEFAULT_COST_MODELS,
        max_ratio: float = 100.0,
        raise_on_mismatch: bool = False,
    ) -> CostModelSweepReport:
        """Sweep scenarios; every cost model must answer like the oracle.

        For each generated query and each strategy, the query runs once
        per cost model and the serialized answers must be byte-identical
        to the reference model's (``cost_models[0]``).  Additionally the
        analytic estimate of each naive plan must stay within
        ``max_ratio`` of the oracle measurement in both directions —
        search-time pricing is allowed to be approximate, not unmoored.
        """
        report = CostModelSweepReport(max_ratio=max_ratio)
        for scenario in scenarios:
            report.scenarios += 1
            self.check_cost_models_scenario(
                scenario, cost_models=cost_models, report=report
            )
            if raise_on_mismatch and not report.answers_ok:
                failure = report.failures[0]
                raise DifferentialMismatchError(
                    f"cost models diverged on query {failure.query.name!r} "
                    f"[{failure.strategy}] of scenario seed={scenario.seed} "
                    f"index={scenario.index} "
                    f"(models: {', '.join(failure.disagreeing)})"
                )
        return report

    # -- fault sweeps ----------------------------------------------------------------
    def check_faults_scenario(
        self,
        scenario: Scenario,
        fault_seeds: Sequence[int] = (1, 2),
        spec: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
    ) -> List[FaultCheckResult]:
        """Serve one scenario under seeded fault schedules; classify jobs.

        For each strategy the scenario's queries are served twice: once
        fault-free (the reference answers) and once per fault seed with a
        generated :class:`~repro.faults.FaultPlan` installed, the
        :class:`~repro.faults.FaultActor` driving crash/rejoin instants,
        and the ``retry`` policy recovering transfers and calls.  Every
        faulted job must land in one of exactly three buckets — answer
        canonically identical to the fault-free run, a well-formed
        partial answer that is a multiset *subset* of it, or a typed
        error — and the drain must settle every job in bounded virtual
        time (a hang would never return).  Silent wrong answers are the
        one outcome with no bucket.
        """
        from ..engine.jobs import JobRequest

        spec = spec if spec is not None else FaultSpec()
        retry = retry if retry is not None else RetryPolicy()
        requests = [
            JobRequest(
                arrival=index * 0.01,
                partial=True,
                deadline=deadline,
                **query.kwargs(),
            )
            for index, query in enumerate(scenario.queries)
        ]
        results: List[FaultCheckResult] = []
        for strategy in self.strategies:
            baseline_session = Session(
                scenario.system,
                strategy=strategy,
                strategy_options=self.strategy_options.get(strategy),
                pick_policy=self.pick_policy,
            )
            baseline = baseline_session.serve(list(requests))
            reference = {
                job.name: _canonical_counts(job.report.items)
                for job in baseline.jobs
                if job.report is not None
            }
            for fault_seed in fault_seeds:
                plan = FaultPlan.generate(fault_seed, scenario.system, spec)
                session = Session(
                    scenario.system,
                    strategy=strategy,
                    strategy_options=self.strategy_options.get(strategy),
                    pick_policy=self.pick_policy,
                    retry=retry,
                    fault_plan=plan,
                )
                report = session.serve(list(requests), actor=FaultActor(plan))
                for job in report.jobs:
                    results.append(
                        _classify_fault_job(
                            job, reference.get(job.name), fault_seed, strategy
                        )
                    )
        return results

    def check_faults(
        self,
        scenarios: Iterable[Scenario],
        fault_seeds: Sequence[int] = (1, 2),
        spec: Optional[FaultSpec] = None,
        retry: Optional[RetryPolicy] = None,
        deadline: Optional[float] = None,
        raise_on_violation: bool = False,
    ) -> FaultSweepReport:
        """Sweep scenarios under seeded chaos; assert the fault invariant.

        The three-way invariant, per (scenario, fault seed, strategy)
        cell and per job: *identical answer, or provable partial subset,
        or typed error* — never a silent wrong answer, never a hang.
        """
        report = FaultSweepReport()
        for scenario in scenarios:
            report.scenarios += 1
            report.cells += len(self.strategies) * len(tuple(fault_seeds))
            for result in self.check_faults_scenario(
                scenario,
                fault_seeds=fault_seeds,
                spec=spec,
                retry=retry,
                deadline=deadline,
            ):
                report.results.append(result)
                if raise_on_violation and not result.ok:
                    raise DifferentialMismatchError(
                        f"fault invariant violated on scenario "
                        f"seed={scenario.seed} index={scenario.index}: "
                        f"{result.describe()}"
                    )
        return report

    # -- mismatch handling ---------------------------------------------------------
    def _find_disagreement(
        self, outcomes: Dict[str, StrategyOutcome]
    ) -> Optional[Tuple[str, str]]:
        reference = self.strategies[0]
        for other in self.strategies[1:]:
            if outcomes[other].answers != outcomes[reference].answers:
                return (reference, other)
        return None

    def _record_mismatch(
        self,
        scenario: Scenario,
        query: GeneratedQuery,
        outcomes: Dict[str, StrategyOutcome],
        strategies: Tuple[str, str],
    ) -> Mismatch:
        answers = {name: out.answers for name, out in outcomes.items()}
        spec, query, shrunk_answers = self._minimized(scenario, query, strategies)
        if shrunk_answers is not None:
            # spec/query/answers must describe the same (shrunk) scenario
            answers = shrunk_answers
        relevant_options = {
            name: dict(opts)
            for name, opts in self.strategy_options.items()
            if name in answers
        }
        mismatch = Mismatch(
            seed=scenario.seed,
            index=scenario.index,
            spec=spec,
            query=query,
            answers=answers,
            strategies=strategies,
            strategy_options=relevant_options,
            pick_policy_note=(
                repr(self.pick_policy) if self.pick_policy is not None else None
            ),
        )
        if self.repro_dir is not None:
            os.makedirs(self.repro_dir, exist_ok=True)
            path = os.path.join(
                self.repro_dir,
                f"repro-seed{scenario.seed}-idx{scenario.index}-{query.name}.py",
            )
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(mismatch.repro_script())
            mismatch.repro_path = path
        return mismatch

    def _minimized(
        self,
        scenario: Scenario,
        query: GeneratedQuery,
        strategies: Tuple[str, str],
    ) -> Tuple[
        ScenarioSpec,
        GeneratedQuery,
        Optional[Dict[str, Tuple[str, ...]]],
    ]:
        """Shrink the scenario while the disagreement still reproduces.

        Regenerates the scenario from its seed with progressively smaller
        specs (documents halved in size, payload stripped); the smallest
        spec on which the same query still disagrees wins.  Generation is
        deterministic, so the repro script rebuilds the shrunk scenario
        exactly.  Returns the spec, the (regenerated) query, and the
        disagreeing strategies' answers on that shrunk scenario — or
        ``None`` for the answers when no shrinking happened.
        """
        if not self.minimize:
            return scenario.spec, query, None
        best: Optional[
            Tuple[ScenarioSpec, GeneratedQuery, Dict[str, Tuple[str, ...]]]
        ] = None
        for candidate in self._shrink_candidates(scenario.spec):
            shrunk_answers = self._disagreeing_answers(
                scenario, candidate, query.name, strategies
            )
            if shrunk_answers is None:
                continue
            regenerated = ScenarioGenerator(seed=scenario.seed, spec=candidate)
            best = (
                candidate,
                regenerated.scenario(scenario.index).query(query.name),
                shrunk_answers,
            )
        if best is None:
            return scenario.spec, query, None
        return best

    def _shrink_candidates(self, spec: ScenarioSpec) -> List[ScenarioSpec]:
        candidates: List[ScenarioSpec] = []
        items = spec.items
        payload = spec.payload_words
        while items > 1 or payload > 0:
            items = max(1, items // 2)
            payload = 0
            candidate = replace(spec, items=items, payload_words=payload)
            if candidate != spec and candidate not in candidates:
                candidates.append(candidate)
            if items == 1:
                break
        return candidates

    def _disagreeing_answers(
        self,
        scenario: Scenario,
        spec: ScenarioSpec,
        query_name: str,
        strategies: Tuple[str, str],
    ) -> Optional[Dict[str, Tuple[str, ...]]]:
        """The pair's answers on the shrunk scenario, or None if it agrees."""
        try:
            shrunk = ScenarioGenerator(seed=scenario.seed, spec=spec).scenario(
                scenario.index
            )
            query = shrunk.query(query_name)
            first = self.run_query(shrunk, query, strategies[0])
            second = self.run_query(shrunk, query, strategies[1])
        except Exception:
            # a shrunk scenario that fails for unrelated reasons is not a
            # valid minimization step
            return None
        if first.answers == second.answers:
            return None
        return {strategies[0]: first.answers, strategies[1]: second.answers}
