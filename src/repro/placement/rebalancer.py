"""The placement loop: observe → decide → act on the virtual clock.

:class:`Rebalancer` closes the loop between serving telemetry
(:class:`~repro.placement.telemetry.PlacementMonitor`) and the catalog
(:mod:`repro.placement.transactions`): each tick it observes one load
window, asks a pluggable :class:`PlacementPolicy` for actions, and
applies them as catalog transactions on the same shared fabric the
queries use — rebalancing traffic contends with query traffic, which is
exactly the trade-off the A1 benchmark measures.

:class:`ThresholdPolicy` is the first policy: threshold + hysteresis.
A fragment whose per-window reads stay above ``hot_reads`` for
``hysteresis`` consecutive windows gains a replica on the least-loaded
live peer without a copy (up to ``max_copies``); one cold for
``hysteresis`` windows sheds a replica; an empty live peer (a fresh
joiner) attracts a migration from the most-crowded peer.  A per-fragment
``cooldown`` keeps the loop from thrashing.

:class:`PlacementActor` packages the loop (plus an optional
:class:`~repro.placement.churn.ChurnSchedule`) behind the duck-typed
actor interface the scheduler ticks
(:class:`repro.engine.scheduler.Scheduler`): ``interval`` and
``on_tick(target, now) -> list[str]``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..peers.system import AXMLSystem
from .churn import ChurnController, ChurnSchedule
from .telemetry import (
    FragmentLoad,
    PeerLoad,
    PlacementMonitor,
    PlacementSnapshot,
)
from .transactions import (
    AddReplica,
    CatalogTransaction,
    MigrateFragment,
    RetireReplica,
    SplitFragment,
)

__all__ = ["PlacementPolicy", "ThresholdPolicy", "Rebalancer", "PlacementActor"]


class PlacementPolicy:
    """Strategy mapping one load snapshot to catalog transactions."""

    def decide(
        self, snapshot: PlacementSnapshot, system: AXMLSystem
    ) -> List[CatalogTransaction]:
        raise NotImplementedError


class ThresholdPolicy(PlacementPolicy):
    """Threshold + hysteresis, the classic feedback-control baseline.

    Parameters
    ----------
    hot_reads:
        Per-window read count at which a fragment counts as hot.
    hysteresis:
        Consecutive hot windows required before scaling up —
        one-window blips never trigger data movement.
    cold_hysteresis:
        Consecutive zero-read windows required before shedding a
        replica; defaults to ``hysteresis``.  Shedding deserves a longer
        fuse than scaling: a warm fragment can draw a zero window by
        chance, and re-shipping a dropped copy is the expensive way to
        find out.
    cooldown:
        Windows a fragment rests after any action on it.
    max_copies:
        Ceiling on copies per fragment (primary + replicas).
    split_items:
        When set, a fragment still hot at ``max_copies`` with at least
        this many items re-splits in two instead (one half stays home,
        the other goes to the least-loaded free peer).  ``None``
        disables splitting.
    """

    def __init__(
        self,
        hot_reads: int = 4,
        hysteresis: int = 2,
        cooldown: int = 2,
        max_copies: int = 3,
        split_items: Optional[int] = None,
        cold_hysteresis: Optional[int] = None,
    ) -> None:
        self.hot_reads = hot_reads
        self.hysteresis = hysteresis
        self.cold_hysteresis = (
            hysteresis if cold_hysteresis is None else cold_hysteresis
        )
        self.cooldown = cooldown
        self.max_copies = max_copies
        self.split_items = split_items
        self._hot_streak: Dict[str, int] = {}
        self._cold_streak: Dict[str, int] = {}
        self._resting: Dict[str, int] = {}

    # -- scoring helpers ---------------------------------------------------------
    @staticmethod
    def _peer_load(snapshot: PlacementSnapshot) -> Dict[str, "PeerLoad"]:
        return {load.peer: load for load in snapshot.peers if load.alive}

    @staticmethod
    def _pressure(load: "PeerLoad") -> Tuple[float, float, int, str]:
        """How contended a peer is as a *data host*.

        Network traffic leads: fragment serving occupies links, not CPU,
        so a peer's window bytes are the signal that its links are the
        convoy.  CPU and queue depth break ties.
        """
        return (float(load.traffic), load.busy, load.queued, load.peer)

    def _spread_target(
        self,
        fragment: FragmentLoad,
        loads: Dict[str, "PeerLoad"],
    ) -> Optional[str]:
        """Least-contended live peer not yet holding a copy, if any."""
        candidates = [
            peer for peer in loads if peer not in fragment.copies
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: self._pressure(loads[p]))

    def decide(
        self, snapshot: PlacementSnapshot, system: AXMLSystem
    ) -> List[CatalogTransaction]:
        loads = self._peer_load(snapshot)
        actions: List[CatalogTransaction] = []
        seen = set()
        for fragment in snapshot.fragments:
            seen.add(fragment.name)
            resting = self._resting.get(fragment.name, 0)
            if resting:
                self._resting[fragment.name] = resting - 1
            hot = fragment.reads >= self.hot_reads
            self._hot_streak[fragment.name] = (
                self._hot_streak.get(fragment.name, 0) + 1 if hot else 0
            )
            self._cold_streak[fragment.name] = (
                self._cold_streak.get(fragment.name, 0) + 1
                if fragment.reads == 0
                else 0
            )
            if resting or not fragment.live_copies:
                continue
            if self._hot_streak[fragment.name] >= self.hysteresis:
                action = self._scale_up(fragment, loads)
                if action is not None:
                    actions.append(action)
                    self._resting[fragment.name] = self.cooldown
                    self._hot_streak[fragment.name] = 0
            elif (
                self._cold_streak[fragment.name] >= self.cold_hysteresis
                and len(fragment.live_copies) > 1
            ):
                # shed the replica on the most-loaded live peer
                live_replicas = [
                    p for p in fragment.live_copies[1:] if p in loads
                ]
                if live_replicas:
                    victim = max(
                        live_replicas, key=lambda p: self._pressure(loads[p])
                    )
                    actions.append(
                        RetireReplica(fragment.doc, fragment.index, victim)
                    )
                    self._resting[fragment.name] = self.cooldown
                    self._cold_streak[fragment.name] = 0
        actions.extend(self._fill_joiners(snapshot, loads))
        # drop tracking for fragments that no longer exist (splits rename)
        for table in (self._hot_streak, self._cold_streak, self._resting):
            for name in list(table):
                if name not in seen:
                    del table[name]
        return actions

    def _scale_up(
        self,
        fragment: FragmentLoad,
        loads: Dict[str, Tuple[float, int]],
    ) -> Optional[CatalogTransaction]:
        target = self._spread_target(fragment, loads)
        if len(fragment.live_copies) < self.max_copies:
            if target is None:
                return None
            return AddReplica(fragment.doc, fragment.index, target)
        if (
            self.split_items is not None
            and fragment.items >= max(self.split_items, 2)
            and target is not None
        ):
            home = fragment.live_copies[0]
            return SplitFragment(
                fragment.doc, fragment.index, (home, target)
            )
        return None

    def _fill_joiners(
        self,
        snapshot: PlacementSnapshot,
        loads: Dict[str, Tuple[float, int]],
    ) -> List[CatalogTransaction]:
        """Re-fragment onto empty live peers (fresh joiners).

        An empty peer attracts the coldest primary from the peer hosting
        the most primaries — one migration per empty peer per tick, each
        behind the same per-fragment cooldown as every other action.
        """
        primaries: Dict[str, List[FragmentLoad]] = {}
        hosted: Dict[str, int] = {peer: 0 for peer in loads}
        for fragment in snapshot.fragments:
            if not fragment.live_copies:
                continue
            home = fragment.live_copies[0]
            primaries.setdefault(home, []).append(fragment)
            for holder in fragment.live_copies:
                if holder in hosted:
                    hosted[holder] += 1
        empty = sorted(peer for peer, count in hosted.items() if count == 0)
        actions: List[CatalogTransaction] = []
        for joiner in empty:
            crowded = [
                (len(frags), peer)
                for peer, frags in primaries.items()
                if len(frags) > 1
            ]
            if not crowded:
                break
            _, donor = max(crowded)
            movable = [
                f
                for f in primaries[donor]
                if not self._resting.get(f.name, 0)
            ]
            if not movable:
                continue
            coldest = min(movable, key=lambda f: (f.reads, f.name))
            actions.append(
                MigrateFragment(coldest.doc, coldest.index, joiner)
            )
            self._resting[coldest.name] = self.cooldown
            primaries[donor].remove(coldest)
        return actions


class Rebalancer:
    """Observe one window, decide, and apply — one placement heartbeat."""

    def __init__(
        self,
        system: AXMLSystem,
        policy: Optional[PlacementPolicy] = None,
        monitor: Optional[PlacementMonitor] = None,
    ) -> None:
        self.system = system
        self.policy = policy or ThresholdPolicy()
        self.monitor = monitor or PlacementMonitor(system)

    def tick(self, now: float = 0.0) -> List[str]:
        """Run one observe→decide→act cycle; returns action notes."""
        snapshot = self.monitor.observe(now)
        notes: List[str] = []
        for action in self.policy.decide(snapshot, self.system):
            try:
                settled = action.apply(self.system, now)
            except ReproError as exc:
                notes.append(f"{action.describe()} REFUSED: {exc}")
                continue
            notes.append(
                f"{action.describe()} [settled {settled * 1000:.2f}ms]"
            )
        return notes


class PlacementActor:
    """The scheduler-facing adaptive-placement agent.

    Ticks on the serving engine's virtual clock (``interval`` seconds
    apart): first applies any due churn events from the schedule, then
    runs the rebalancing loop.  Binds lazily to the serving Σ handed to
    the first :meth:`on_tick` — sessions may serve against a clone, and
    the actor must observe and mutate *that* system, not the blueprint.
    """

    def __init__(
        self,
        interval: float = 0.01,
        policy: Optional[PlacementPolicy] = None,
        churn: Optional[ChurnSchedule] = None,
        rebalance: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"tick interval must be positive, got {interval!r}")
        self.interval = interval
        self.policy = policy
        self.churn = churn
        self.rebalance = rebalance
        self._system: Optional[AXMLSystem] = None
        self._rebalancer: Optional[Rebalancer] = None
        self._controller: Optional[ChurnController] = None

    def _bind(self, target: AXMLSystem) -> None:
        if self._system is target:
            return
        self._system = target
        self._rebalancer = Rebalancer(target, policy=self.policy)
        self._controller = ChurnController(target)

    def on_tick(self, target: AXMLSystem, now: float) -> List[str]:
        """One heartbeat: churn first, then rebalancing.  Returns notes."""
        self._bind(target)
        notes: List[str] = []
        if self.churn is not None:
            for event in self.churn.due(now):
                notes.extend(self._controller.apply(event, now))
        if self.rebalance:
            notes.extend(self._rebalancer.tick(now))
        return notes
