"""Catalog transactions: placement actions that keep answers identical.

Every placement decision — spawn a replica, retire one, migrate a
fragment, re-split a hot fragment — executes as a *transaction* against
one Σ: the data ships first (a real :class:`~repro.net.message.Message`
on the shared fabric, paying latency and bandwidth like any query
transfer), the new copies are installed, and only then does the catalog
entry swap — atomically, via :meth:`FragmentCatalog.register
<repro.dist.catalog.FragmentCatalog.register>` with
``replace_existing`` — before the stale copies retire.  Validation runs
up front, so a refused transaction leaves Σ byte-identical to before;
a failure after installation rolls the installed copies back.

The invariant every transaction preserves: at any instant, reassembling
the catalog's fragments in index order reproduces the original document
byte-identically.  Queries racing a transaction on the virtual clock
see either the old layout or the new one, never a torn mix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..dist.catalog import FragmentInfo, FragmentedDocInfo
from ..dist.fragmenter import _numeric_stats
from ..errors import FragmentationError, FragmentUnavailableError
from ..net.message import Message, MessageKind
from ..peers.system import AXMLSystem
from ..xmlcore.model import Element
from ..xmlcore.serializer import serialize

__all__ = [
    "CatalogTransaction",
    "AddReplica",
    "RetireReplica",
    "MigrateFragment",
    "SplitFragment",
]


class CatalogTransaction:
    """One atomic placement action against a system's fragment catalog."""

    def describe(self) -> str:
        raise NotImplementedError

    def apply(self, system: AXMLSystem, now: float = 0.0) -> float:
        """Execute against ``system`` starting at virtual ``now``.

        Returns the virtual instant the action settled (transfers done,
        catalog swapped).  Raises :class:`FragmentationError` without
        touching Σ when the action is invalid.
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------
    @staticmethod
    def _fragment(
        system: AXMLSystem, doc: str, index: int
    ) -> Tuple[FragmentedDocInfo, FragmentInfo]:
        info = system.fragments.info(doc)
        if not 0 <= index < len(info.fragments):
            raise FragmentationError(
                f"document {doc!r} has no fragment index {index}"
            )
        return info, info.fragments[index]

    @staticmethod
    def _source_copy(system: AXMLSystem, fragment: FragmentInfo) -> str:
        """The peer a copy ships from: primary first, else a live replica."""
        for peer_id in fragment.peers:
            if peer_id in system.peers and system.peers[peer_id].alive:
                if system.peers[peer_id].has_document(fragment.name):
                    return peer_id
        raise FragmentUnavailableError(fragment.name, fragment.peers)

    @staticmethod
    def _check_target(
        system: AXMLSystem, fragment: FragmentInfo, target: str, name: str
    ) -> None:
        peer = system.peer(target)  # raises UnknownPeerError when absent
        if not peer.alive:
            raise FragmentationError(
                f"cannot place {name!r} on dead peer {target!r}"
            )
        if peer.has_document(name):
            raise FragmentationError(
                f"peer {target!r} already hosts a document named {name!r}"
            )

    @staticmethod
    def _ship(
        system: AXMLSystem,
        src: str,
        dst: str,
        name: str,
        tree: Element,
        now: float,
    ) -> float:
        """Ship one fragment copy src→dst and install it; returns arrival."""
        message = Message(
            src=src,
            dst=dst,
            kind=MessageKind.INSTALL,
            payload=serialize(tree),
            headers={"doc": name},
        )
        arrival = system.network.deliver(message, now)
        system.peer(dst).install_document(name, tree.copy_without_ids())
        return arrival

    @staticmethod
    def _swap_fragment(
        system: AXMLSystem, info: FragmentedDocInfo, new_fragment: FragmentInfo
    ) -> None:
        """Atomically replace one fragment entry of ``info`` in the catalog."""
        fragments = tuple(
            new_fragment if f.index == new_fragment.index else f
            for f in info.fragments
        )
        system.fragments.register(
            replace(info, fragments=fragments), replace_existing=True
        )


@dataclass
class AddReplica(CatalogTransaction):
    """Mirror one fragment onto ``target`` and register it as a pick.

    The fragment becomes (or stays) a generic class, so replica-aware
    admission (:class:`~repro.peers.registry.QueueDepthPolicy`) starts
    steering reads toward the new copy on the very next pick.
    """

    doc: str
    index: int
    target: str

    def describe(self) -> str:
        return f"add-replica {self.doc}.f{self.index} -> {self.target}"

    def apply(self, system: AXMLSystem, now: float = 0.0) -> float:
        info, fragment = self._fragment(system, self.doc, self.index)
        if self.target in fragment.peers:
            raise FragmentationError(
                f"peer {self.target!r} already holds a copy of {fragment.name!r}"
            )
        self._check_target(system, fragment, self.target, fragment.name)
        source = self._source_copy(system, fragment)
        tree = system.peers[source].documents[fragment.name]
        settled = self._ship(
            system, source, self.target, fragment.name, tree, now
        )
        generic = fragment.generic
        if generic is None:
            # first replica: open the class with the existing copies
            generic = fragment.name
            for holder in fragment.peers:
                system.registry.register_document(generic, fragment.name, holder)
        system.registry.register_document(generic, fragment.name, self.target)
        self._swap_fragment(
            system,
            info,
            replace(
                fragment,
                replicas=fragment.replicas + (self.target,),
                generic=generic,
            ),
        )
        return settled


@dataclass
class RetireReplica(CatalogTransaction):
    """Drop one replica copy (never the primary) of a fragment."""

    doc: str
    index: int
    peer: str

    def describe(self) -> str:
        return f"retire-replica {self.doc}.f{self.index} @ {self.peer}"

    def apply(self, system: AXMLSystem, now: float = 0.0) -> float:
        info, fragment = self._fragment(system, self.doc, self.index)
        if self.peer == fragment.home:
            raise FragmentationError(
                f"cannot retire the primary copy of {fragment.name!r}; "
                "migrate it instead"
            )
        if self.peer not in fragment.replicas:
            raise FragmentationError(
                f"peer {self.peer!r} holds no replica of {fragment.name!r}"
            )
        replicas = tuple(p for p in fragment.replicas if p != self.peer)
        generic: Optional[str] = fragment.generic
        system.registry.unregister_document(generic, fragment.name, self.peer)
        if not replicas and generic is not None:
            # class collapsed to the primary alone: close it so the
            # evaluator goes back to the direct (cheaper) reference
            system.registry.unregister_document(
                generic, fragment.name, fragment.home
            )
            generic = None
        self._swap_fragment(
            system, info, replace(fragment, replicas=replicas, generic=generic)
        )
        if self.peer in system.peers:
            system.peers[self.peer].drop_document(fragment.name)
        return now


@dataclass
class MigrateFragment(CatalogTransaction):
    """Move a fragment's primary copy to ``target``.

    Ship → install → swap catalog → retire the old primary, in that
    order: a failure before the swap leaves the old entry (and the old
    copy) fully intact, which is the atomicity contract the placement
    tests pin.
    """

    doc: str
    index: int
    target: str

    def describe(self) -> str:
        return f"migrate {self.doc}.f{self.index} -> {self.target}"

    def apply(self, system: AXMLSystem, now: float = 0.0) -> float:
        info, fragment = self._fragment(system, self.doc, self.index)
        if self.target == fragment.home:
            raise FragmentationError(
                f"fragment {fragment.name!r} is already primary on "
                f"{self.target!r}"
            )
        old_home = fragment.home
        if self.target in fragment.replicas:
            # promotion: the copy is already there, no transfer needed
            replicas = tuple(
                p for p in fragment.replicas if p != self.target
            )
            new_fragment = replace(
                fragment, home=self.target, replicas=replicas + (old_home,)
            )
            self._swap_fragment(system, info, new_fragment)
            return now
        self._check_target(system, fragment, self.target, fragment.name)
        source = self._source_copy(system, fragment)
        tree = system.peers[source].documents[fragment.name]
        settled = self._ship(
            system, source, self.target, fragment.name, tree, now
        )
        try:
            if fragment.generic is not None:
                system.registry.register_document(
                    fragment.generic, fragment.name, self.target
                )
                system.registry.unregister_document(
                    fragment.generic, fragment.name, old_home
                )
            self._swap_fragment(
                system, info, replace(fragment, home=self.target)
            )
        except Exception:
            # roll the shipped copy back; the old entry never changed
            system.peer(self.target).drop_document(fragment.name)
            raise
        if old_home in system.peers:
            system.peers[old_home].drop_document(fragment.name)
        return settled


@dataclass
class SplitFragment(CatalogTransaction):
    """Re-split one hot fragment's items across several peers.

    The fragment's contiguous ordinal slice divides into one sub-slice
    per ``across`` peer (names carry the absolute ordinal range, e.g.
    ``cat.f4_8``, so repeated splits never collide).  Sub-fragments
    start unreplicated; the old fragment's copies — including replicas —
    retire once the new entry is registered.
    """

    doc: str
    index: int
    across: Sequence[str] = ()

    def describe(self) -> str:
        return (
            f"split {self.doc}.f{self.index} across "
            f"{','.join(self.across)}"
        )

    def apply(self, system: AXMLSystem, now: float = 0.0) -> float:
        targets = list(self.across)
        if len(targets) < 2:
            raise FragmentationError(
                "a split needs at least two target peers"
            )
        if len(set(targets)) != len(targets):
            raise FragmentationError("split targets must be distinct peers")
        info, fragment = self._fragment(system, self.doc, self.index)
        if fragment.count < len(targets):
            raise FragmentationError(
                f"fragment {fragment.name!r} has {fragment.count} items, "
                f"fewer than the {len(targets)} requested sub-fragments"
            )
        source = self._source_copy(system, fragment)
        tree = system.peers[source].documents[fragment.name]
        items = list(tree.children)
        lo, hi = fragment.ordinals

        # carve the sub-slices and their names, then validate targets
        base, extra = divmod(len(items), len(targets))
        pieces: List[Tuple[str, str, Tuple[int, int], List[Element]]] = []
        offset = 0
        for position, target in enumerate(targets):
            width = base + (1 if position < extra else 0)
            piece_items = items[offset:offset + width]
            piece_lo, piece_hi = lo + offset, lo + offset + width
            name = f"{self.doc}.f{piece_lo}_{piece_hi}"
            self._check_target(system, fragment, target, name)
            pieces.append((name, target, (piece_lo, piece_hi), piece_items))
            offset += width

        installed: List[Tuple[str, str]] = []
        settled = now
        try:
            sub_fragments: List[FragmentInfo] = []
            for name, target, ordinals, piece_items in pieces:
                root = Element(tree.tag, attrs=dict(tree.attrs))
                for item in piece_items:
                    root.append(item.copy_without_ids())
                if target == source:
                    system.peer(target).install_document(name, root)
                else:
                    settled = max(
                        settled,
                        self._ship(system, source, target, name, root, now),
                    )
                installed.append((name, target))
                sub_fragments.append(
                    FragmentInfo(
                        doc=self.doc,
                        index=0,  # renumbered below
                        name=name,
                        home=target,
                        count=len(piece_items),
                        ordinals=ordinals,
                        stats=_numeric_stats(piece_items),
                    )
                )
            fragments = [
                f for f in info.fragments if f.index != fragment.index
            ]
            fragments[fragment.index:fragment.index] = sub_fragments
            renumbered = tuple(
                replace(f, index=position)
                for position, f in enumerate(fragments)
            )
            system.fragments.register(
                replace(info, fragments=renumbered), replace_existing=True
            )
        except Exception:
            for name, target in installed:
                system.peer(target).drop_document(name)
            raise
        # old copies (primary + any replicas) retire after the swap
        if fragment.generic is not None:
            for holder in fragment.peers:
                system.registry.unregister_document(
                    fragment.generic, fragment.name, holder
                )
        for holder in fragment.peers:
            if holder in system.peers:
                system.peers[holder].drop_document(fragment.name)
        return settled
