"""Peer churn: kills, joins, and catalog failover.

The paper's peers are autonomous — they may leave (or arrive) at any
moment, yet the system must keep answering what it still can answer and
*refuse loudly* what it cannot.  This module provides:

* :class:`ChurnEvent` / :class:`ChurnSchedule` — a deterministic script
  of kill/join events on the virtual clock, the workload-side churn
  knob;
* :class:`ChurnController` — the Σ-side reaction: a kill marks the peer
  dead, scrubs it from the generic registry (admission immediately
  routes around it), and *fails the catalog over* — every fragment
  primaried on the victim promotes a surviving replica to primary; a
  fragment whose last copy died keeps its entry, so reads raise the
  typed :class:`~repro.errors.FragmentUnavailableError` instead of
  returning a partial answer.  A join adds the peer (with links to
  every live peer) or revives a known one; the rebalancer then spreads
  data onto it through ordinary transactions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Tuple

from ..peers.system import AXMLSystem

__all__ = ["ChurnEvent", "ChurnSchedule", "ChurnController"]

KILL = "kill"
JOIN = "join"


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change at a virtual instant."""

    time: float
    action: str  # "kill" or "join"
    peer: str
    #: Compute speed for a joining peer (ignored on kill).
    compute_speed: float = 100_000.0
    #: Link quality from the joiner to every live peer (ignored on kill).
    latency: float = 0.01
    bandwidth: float = 1_000_000.0

    def __post_init__(self) -> None:
        if self.action not in (KILL, JOIN):
            raise ValueError(
                f"churn action must be 'kill' or 'join', got {self.action!r}"
            )

    def describe(self) -> str:
        return f"{self.action} {self.peer} @ {self.time * 1000:.2f}ms"


class ChurnSchedule:
    """A time-ordered script of churn events, consumed as time passes."""

    def __init__(self, events: Iterable[ChurnEvent] = ()) -> None:
        self._events: List[ChurnEvent] = sorted(
            events, key=lambda e: (e.time, e.peer)
        )
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._events) - self._cursor

    def due(self, now: float) -> List[ChurnEvent]:
        """Events whose time has arrived, each returned exactly once."""
        fired: List[ChurnEvent] = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].time <= now
        ):
            fired.append(self._events[self._cursor])
            self._cursor += 1
        return fired


class ChurnController:
    """Applies membership changes to one Σ and fails the catalog over."""

    def __init__(self, system: AXMLSystem) -> None:
        self.system = system

    def apply(self, event: ChurnEvent, now: float = 0.0) -> List[str]:
        if event.action == KILL:
            return self.kill(event.peer, now=now)
        return self.join(
            event.peer,
            compute_speed=event.compute_speed,
            latency=event.latency,
            bandwidth=event.bandwidth,
        )

    # -- leave -----------------------------------------------------------------
    def kill(self, peer_id: str, now: float = 0.0) -> List[str]:
        """Peer ``peer_id`` leaves: mark dead, scrub registry, fail over.

        Idempotent; the peer object (and its documents) stay around so
        accounting can settle, but nothing routes to it any more.
        In-flight transfers on the victim's links are cancelled at
        ``now`` — a later rejoin must not find pre-crash traffic still
        queued for silent delivery.
        """
        peer = self.system.peer(peer_id)
        if not peer.alive:
            return [f"kill {peer_id}: already down"]
        peer.alive = False
        notes = [f"kill {peer_id}"]
        cancelled = self.system.network.cancel_peer_traffic(peer_id, now)
        if cancelled:
            notes.append(
                f"cancelled in-flight traffic on {cancelled} links "
                f"touching {peer_id}"
            )
        scrubbed = self.system.registry.remove_peer(peer_id)
        if scrubbed:
            notes.append(
                f"unregistered {scrubbed} generic memberships on {peer_id}"
            )
        for info in list(self.system.fragments):
            changed = False
            fragments = []
            for fragment in info.fragments:
                live_replicas = tuple(
                    p
                    for p in fragment.replicas
                    if p in self.system.peers and self.system.peers[p].alive
                )
                if fragment.home == peer_id:
                    if live_replicas:
                        new_home = live_replicas[0]
                        fragment = replace(
                            fragment,
                            home=new_home,
                            replicas=live_replicas[1:],
                        )
                        notes.append(
                            f"failover {fragment.name}: "
                            f"{peer_id} -> {new_home}"
                        )
                        changed = True
                    else:
                        # last copy died with the peer: the entry stays,
                        # so reads raise FragmentUnavailableError with
                        # the last-known peers instead of a partial answer
                        notes.append(
                            f"fragment {fragment.name} unavailable "
                            f"(last copy was on {peer_id})"
                        )
                elif live_replicas != fragment.replicas:
                    fragment = replace(fragment, replicas=live_replicas)
                    changed = True
                fragments.append(fragment)
            if changed:
                self.system.fragments.register(
                    replace(info, fragments=tuple(fragments)),
                    replace_existing=True,
                )
        return notes

    # -- join ------------------------------------------------------------------
    def join(
        self,
        peer_id: str,
        compute_speed: float = 100_000.0,
        latency: float = 0.01,
        bandwidth: float = 1_000_000.0,
    ) -> List[str]:
        """Peer ``peer_id`` joins (or re-joins) the system.

        A brand-new peer gets symmetric links to every live peer; a
        known dead peer is revived in place (its stale copies were
        already scrubbed from registry and catalog at kill time — the
        rebalancer treats it as empty and re-fragments onto it through
        ordinary transactions).
        """
        if peer_id in self.system.peers:
            peer = self.system.peers[peer_id]
            if peer.alive:
                return [f"join {peer_id}: already live"]
            peer.alive = True
            return [f"rejoin {peer_id}"]
        self.system.add_peer(peer_id, compute_speed)
        linked = []
        for other_id in self.system.live_peers():
            if other_id == peer_id:
                continue
            self.system.network.add_link(
                peer_id, other_id, latency, bandwidth, symmetric=True
            )
            linked.append(other_id)
        return [f"join {peer_id} (linked to {len(linked)} peers)"]
