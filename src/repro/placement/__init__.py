"""Adaptive placement (``repro.placement``): close the telemetry loop.

The paper assumes data placement is chosen once, by hand.  This
subsystem makes it a feedback loop over the serving engine's telemetry:

* :class:`~repro.placement.telemetry.PlacementMonitor` snapshots
  per-peer and per-fragment load (document reads, CPU windows, queue
  depth, traffic) as deltas per observation window;
* :mod:`~repro.placement.transactions` expresses every placement action
  — :class:`AddReplica`, :class:`RetireReplica`,
  :class:`MigrateFragment`, :class:`SplitFragment` — as an atomic
  catalog transaction: data ships on the shared fabric, the catalog
  entry swaps atomically, stale copies retire last, and answers stay
  byte-identical throughout;
* :class:`~repro.placement.rebalancer.Rebalancer` runs the
  observe→decide→act loop under a pluggable
  :class:`~repro.placement.rebalancer.PlacementPolicy`
  (:class:`ThresholdPolicy` — threshold + hysteresis — first);
* :class:`~repro.placement.churn.ChurnController` survives membership
  changes: kills fail the catalog over to surviving replicas (the last
  copy's death makes reads raise the typed
  :class:`~repro.errors.FragmentUnavailableError`), joins attract data
  through ordinary rebalancing;
* :class:`~repro.placement.rebalancer.PlacementActor` packages it all
  behind the scheduler's background-actor interface, ticking on the
  serving engine's virtual clock between query events (pass it as
  ``actor=`` to :meth:`Session.serve <repro.session.Session.serve>`).

``benchmarks/bench_a1_placement.py`` measures the payoff: sustained
qps under a mid-run hotspot shift and 100% completion under a scripted
peer kill, adaptive vs. static placement.
"""

from .churn import ChurnController, ChurnEvent, ChurnSchedule
from .rebalancer import (
    PlacementActor,
    PlacementPolicy,
    Rebalancer,
    ThresholdPolicy,
)
from .telemetry import (
    FragmentLoad,
    PeerLoad,
    PlacementMonitor,
    PlacementSnapshot,
)
from .transactions import (
    AddReplica,
    CatalogTransaction,
    MigrateFragment,
    RetireReplica,
    SplitFragment,
)

__all__ = [
    "AddReplica",
    "CatalogTransaction",
    "ChurnController",
    "ChurnEvent",
    "ChurnSchedule",
    "FragmentLoad",
    "MigrateFragment",
    "PeerLoad",
    "PlacementActor",
    "PlacementMonitor",
    "PlacementPolicy",
    "PlacementSnapshot",
    "Rebalancer",
    "RetireReplica",
    "SplitFragment",
    "ThresholdPolicy",
]
