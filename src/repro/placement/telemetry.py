"""Placement telemetry: windowed load snapshots over one serving Σ.

The serving engine already accounts for everything the placement loop
needs — per-peer CPU time (:attr:`Peer.busy_time
<repro.peers.peer.Peer.busy_time>`), compute-queue depth
(:attr:`Peer.queued <repro.peers.peer.Peer.queued>`), per-document read
counts (:attr:`Peer.doc_reads <repro.peers.peer.Peer.doc_reads>`) and
per-peer network traffic (:meth:`Network.peer_traffic
<repro.net.network.Network.peer_traffic>`).  :class:`PlacementMonitor`
turns those monotone counters into *windows*: each :meth:`observe
<PlacementMonitor.observe>` call reports the delta since the previous
call, so a :class:`~repro.placement.rebalancer.Rebalancer` ticking on
the scheduler's virtual clock sees recent demand, not all-time totals —
a fragment that was hot ten windows ago and is cold now reads as cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..peers.system import AXMLSystem

__all__ = ["PeerLoad", "FragmentLoad", "PlacementSnapshot", "PlacementMonitor"]


@dataclass(frozen=True)
class PeerLoad:
    """One peer's load over the last observation window."""

    peer: str
    alive: bool
    #: Jobs admitted-but-unfinished at observation time (instantaneous).
    queued: int
    #: CPU seconds spent inside the window.
    busy: float
    #: Document reads served inside the window (all documents).
    reads: int
    #: Bytes sent + received inside the window.
    traffic: int


@dataclass(frozen=True)
class FragmentLoad:
    """One fragment's demand over the last observation window."""

    doc: str
    index: int
    name: str
    #: Every peer holding a copy, primary first (catalog order).
    copies: Tuple[str, ...]
    #: Copies whose hosting peer is still alive.
    live_copies: Tuple[str, ...]
    #: Reads of the fragment document inside the window, summed over
    #: copies (each scatter-gather fan-out reads exactly one copy).
    reads: int
    #: Items (root children) in the fragment — re-split candidates are
    #: the large ones.
    items: int


@dataclass(frozen=True)
class PlacementSnapshot:
    """Everything one monitor window observed, in deterministic order."""

    time: float
    peers: Tuple[PeerLoad, ...] = ()
    fragments: Tuple[FragmentLoad, ...] = ()

    def peer(self, peer_id: str) -> PeerLoad:
        for load in self.peers:
            if load.peer == peer_id:
                return load
        raise KeyError(f"no peer {peer_id!r} in snapshot")

    def fragment(self, name: str) -> FragmentLoad:
        for load in self.fragments:
            if load.name == name:
                return load
        raise KeyError(f"no fragment {name!r} in snapshot")

    def describe(self) -> str:
        lines = [f"placement snapshot @ {self.time * 1000:.2f}ms"]
        for load in self.peers:
            state = "up" if load.alive else "DOWN"
            lines.append(
                f"  peer {load.peer:10s} [{state}] queued={load.queued} "
                f"busy={load.busy * 1000:.2f}ms reads={load.reads} "
                f"traffic={load.traffic}B"
            )
        for load in self.fragments:
            lines.append(
                f"  fragment {load.name:14s} reads={load.reads} "
                f"copies={','.join(load.live_copies) or '-'}"
            )
        return "\n".join(lines)


class PlacementMonitor:
    """Turns Σ's monotone counters into per-window load deltas.

    Stateful: the first :meth:`observe` call baselines every counter
    (reporting the activity since the run's reset), and each subsequent
    call reports the delta since the previous one.  Purely observational
    — never mutates peers, the network, or the catalog.
    """

    def __init__(self, system: AXMLSystem) -> None:
        self.system = system
        self._last_reads: Dict[str, Dict[str, int]] = {}
        self._last_busy: Dict[str, float] = {}
        self._last_traffic: Dict[str, int] = {}

    def observe(self, now: float = 0.0) -> PlacementSnapshot:
        """One window: deltas since the previous call, as a snapshot."""
        traffic = self.system.network.peer_traffic()
        peer_loads: List[PeerLoad] = []
        window_reads: Dict[str, Dict[str, int]] = {}
        for peer_id in sorted(self.system.peers):
            peer = self.system.peers[peer_id]
            prev_reads = self._last_reads.get(peer_id, {})
            deltas = {
                name: count - prev_reads.get(name, 0)
                for name, count in peer.doc_reads.items()
                if count - prev_reads.get(name, 0) > 0
            }
            window_reads[peer_id] = deltas
            flow = traffic.get(peer_id)
            moved = (flow.sent_bytes + flow.received_bytes) if flow else 0
            peer_loads.append(
                PeerLoad(
                    peer=peer_id,
                    alive=peer.alive,
                    queued=peer.queued,
                    busy=peer.busy_time - self._last_busy.get(peer_id, 0.0),
                    reads=sum(deltas.values()),
                    traffic=moved - self._last_traffic.get(peer_id, 0),
                )
            )
            self._last_reads[peer_id] = dict(peer.doc_reads)
            self._last_busy[peer_id] = peer.busy_time
            self._last_traffic[peer_id] = moved

        fragment_loads: List[FragmentLoad] = []
        for info in self.system.fragments:
            for fragment in info.fragments:
                live = tuple(
                    pid
                    for pid in fragment.peers
                    if pid in self.system.peers and self.system.peers[pid].alive
                )
                reads = sum(
                    window_reads.get(pid, {}).get(fragment.name, 0)
                    for pid in fragment.peers
                )
                fragment_loads.append(
                    FragmentLoad(
                        doc=fragment.doc,
                        index=fragment.index,
                        name=fragment.name,
                        copies=fragment.peers,
                        live_copies=live,
                        reads=reads,
                        items=fragment.count,
                    )
                )
        return PlacementSnapshot(
            time=now,
            peers=tuple(peer_loads),
            fragments=tuple(fragment_loads),
        )
