"""Trace exporters: Chrome-trace-event JSON (Perfetto) and JSON-lines.

``to_chrome_trace`` renders a :class:`~repro.obs.tracer.Trace` as the
Chrome trace-event format (the ``{"traceEvents": [...]}`` object form):
complete (``"ph": "X"``) events with microsecond ``ts``/``dur`` on the
virtual clock, one thread per job plus thread 0 for run-level spans,
and metadata events naming them.  The output loads directly in
https://ui.perfetto.dev (open → drop the file) — each job is a swim
lane, each transfer hop / CPU charge / backoff window a block with its
bytes and peers in the args pane.

``write_jsonl`` / ``load_trace`` are the flat round-trippable form:
one span per line with explicit ``id``/``parent`` links, which is what
``scripts/trace_view.py`` consumes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .tracer import CAT_JOB, Span, Trace

__all__ = [
    "load_trace",
    "to_chrome_trace",
    "to_jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
]

#: One virtual second rendered as this many trace-event microseconds.
_US = 1_000_000.0


def to_chrome_trace(trace: Trace) -> Dict[str, object]:
    """The trace as a Chrome trace-event JSON object (Perfetto-loadable)."""
    events: List[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro virtual clock"},
        },
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "thread_name",
            "args": {"name": "run (scheduler/placement/faults)"},
        },
    ]
    for tid, (job_name, root) in enumerate(trace.jobs.items(), start=1):
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": job_name},
            }
        )
        for span in root.walk():
            events.append(_complete_event(span, tid))
    for span in trace.run:
        for sub in span.walk():
            events.append(_complete_event(sub, 0))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _complete_event(span: Span, tid: int) -> dict:
    args = {str(k): _jsonable(v) for k, v in span.attrs.items()}
    return {
        "ph": "X",
        "pid": 1,
        "tid": tid,
        "name": span.name,
        "cat": span.cat,
        "ts": span.start * _US,
        "dur": max(0.0, span.duration) * _US,
        "args": args,
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(trace: Trace, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(trace), handle, indent=1)
        handle.write("\n")
    return path


# -- JSON-lines round trip ---------------------------------------------------------
def to_jsonl_records(trace: Trace) -> List[dict]:
    """Flat records with ``id``/``parent`` links, pre-order per tree."""
    records: List[dict] = []
    counter = [0]

    def emit(span: Span, parent: Optional[int], job: Optional[str]) -> None:
        span_id = counter[0]
        counter[0] += 1
        records.append(
            {
                "id": span_id,
                "parent": parent,
                "job": job,
                "name": span.name,
                "cat": span.cat,
                "start": span.start,
                "end": span.end,
                "attrs": {str(k): _jsonable(v) for k, v in span.attrs.items()},
            }
        )
        for child in span.children:
            emit(child, span_id, job)

    for job_name, root in trace.jobs.items():
        emit(root, None, job_name)
    for span in trace.run:
        emit(span, None, None)
    return records


def write_jsonl(trace: Trace, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        for record in to_jsonl_records(trace):
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return path


def load_trace(path: str) -> Trace:
    """Rebuild a :class:`Trace` from a ``write_jsonl`` file."""
    spans: Dict[int, Span] = {}
    jobs: Dict[str, Span] = {}
    run: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            span = Span(
                record["name"],
                record["cat"],
                record["start"],
                record["end"],
                attrs=dict(record.get("attrs") or {}),
            )
            spans[record["id"]] = span
            parent = record.get("parent")
            if parent is not None:
                spans[parent].children.append(span)
            elif span.cat == CAT_JOB and record.get("job"):
                jobs[record["job"]] = span
            else:
                run.append(span)
    return Trace(jobs=jobs, run=run)
