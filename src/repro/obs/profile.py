"""Wall-clock profiling hooks: per-phase timers and opt-in cProfile.

Where the :class:`~repro.obs.tracer.Tracer` accounts for **virtual**
time (what the simulated fleet experienced), :class:`WallProfiler`
accounts for **wall** time (what this python process actually burned
running the simulation).  The raw-speed roadmap item needs the latter:
T1 spends ~1.5 wall-seconds to simulate ~63ms of virtual time, and the
per-phase split (parse / optimize / evaluate / serialize) plus the
cProfile hotspot table say where the rework should aim.

Usage::

    profiler = WallProfiler()
    session = Session(system, profiler=profiler)
    session.query("q", ...)
    print(profiler.describe())

    deep = WallProfiler(capture=True)   # opt-in cProfile capture
    ...
    for row in deep.hotspots(10):
        print(row)

Phases nest safely (the timer is reentrant per phase name) and the
profiler never touches the virtual clock or the RNG — wall timing is
observational only.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Dict, List, Tuple

__all__ = ["WallProfiler"]


class _PhaseStat:
    __slots__ = ("seconds", "calls", "_depth", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self._depth = 0
        self._started = 0.0


class WallProfiler:
    """Accumulates wall time per named phase; optionally runs cProfile.

    ``capture=True`` wraps the outermost phase in a ``cProfile.Profile``
    so :meth:`hotspots` can name the hottest functions.  The profiler is
    enabled only at phase depth zero — nested phases share the active
    capture instead of re-enabling (cProfile forbids reentrancy).
    """

    def __init__(self, capture: bool = False) -> None:
        self.capture = capture
        self._phases: Dict[str, _PhaseStat] = {}
        self._order: List[str] = []
        self._active_depth = 0
        self._profile = cProfile.Profile() if capture else None

    @contextmanager
    def phase(self, name: str):
        """Time a phase; reentrant per name (inner entries don't double-count)."""
        stat = self._phases.get(name)
        if stat is None:
            stat = self._phases[name] = _PhaseStat()
            self._order.append(name)
        stat.calls += 1
        outermost_for_name = stat._depth == 0
        if outermost_for_name:
            stat._started = time.perf_counter()
        stat._depth += 1
        profiling_here = (
            self._profile is not None and self._active_depth == 0
        )
        self._active_depth += 1
        if profiling_here:
            self._profile.enable()
        try:
            yield
        finally:
            if profiling_here:
                self._profile.disable()
            self._active_depth -= 1
            stat._depth -= 1
            if outermost_for_name:
                stat.seconds += time.perf_counter() - stat._started

    # -- reading -----------------------------------------------------------------
    def seconds(self, name: str) -> float:
        stat = self._phases.get(name)
        return stat.seconds if stat is not None else 0.0

    def calls(self, name: str) -> int:
        stat = self._phases.get(name)
        return stat.calls if stat is not None else 0

    def phases(self) -> List[Tuple[str, float, int]]:
        """``(name, wall_seconds, calls)`` in first-seen order."""
        return [
            (name, self._phases[name].seconds, self._phases[name].calls)
            for name in self._order
        ]

    def hotspots(self, n: int = 10) -> List[Tuple[str, int, float, float]]:
        """Top-``n`` functions by cumulative wall time from cProfile.

        Each row is ``(where, ncalls, tottime, cumtime)``; empty when
        the profiler was built with ``capture=False``.
        """
        if self._profile is None:
            return []
        stats = pstats.Stats(self._profile, stream=io.StringIO())
        stats.sort_stats("cumulative")
        rows: List[Tuple[str, int, float, float]] = []
        for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
            filename, lineno, name = func
            if filename.startswith("<") and name in ("<module>",):
                continue
            where = f"{_shorten(filename)}:{lineno}({name})"
            rows.append((where, nc, tt, ct))
        rows.sort(key=lambda row: row[3], reverse=True)
        return rows[:n]

    def describe(self) -> str:
        lines = ["wall-clock phases:"]
        total = sum(stat.seconds for stat in self._phases.values())
        for name, seconds, calls in self.phases():
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"  {name:<12} {seconds * 1000:9.3f}ms "
                f"x{calls:<6} ({share:.0%})"
            )
        if self._profile is not None:
            lines.append("hotspots (cumulative):")
            for where, ncalls, tottime, cumtime in self.hotspots(10):
                lines.append(
                    f"  {cumtime * 1000:9.3f}ms cum "
                    f"{tottime * 1000:9.3f}ms self "
                    f"x{ncalls:<8} {where}"
                )
        return "\n".join(lines)


def _shorten(filename: str) -> str:
    for marker in ("/src/", "/lib/python"):
        idx = filename.rfind(marker)
        if idx >= 0:
            return filename[idx + len(marker):] if marker == "/src/" else filename.rsplit("/", 1)[-1]
    return filename.rsplit("/", 1)[-1]
