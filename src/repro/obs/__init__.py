"""Deterministic observability: tracing, metrics, critical paths, profiling.

The package splits observation along the clock it observes:

* :class:`Tracer` / :class:`Trace` / :class:`Span` — **virtual-clock**
  span trees, one per served job (admission → plan → eval → settle)
  plus run-level fault-window and placement spans.  Recording spends no
  RNG and charges no virtual time; with no tracer installed every hook
  is one ``is None`` check.
* :class:`MetricsRegistry` — labeled counters/gauges/histograms; the
  structured successor of the ad-hoc ``ServingReport.faults``/
  ``actions`` dicts.
* :func:`analyze` / :func:`decompose` — critical-path decomposition of
  each job's latency into queue/link/cpu/backoff/stall segments that
  sum exactly to the measured latency, naming the bottleneck resource.
* :class:`WallProfiler` — **wall-clock** per-phase timers and opt-in
  cProfile capture for the raw-speed roadmap work.
* :func:`to_chrome_trace` / :func:`write_jsonl` / :func:`load_trace` —
  Perfetto-loadable Chrome-trace JSON and round-trippable JSON-lines.
"""

from .critical_path import SEGMENTS, JobPath, RunPath, analyze, decompose
from .export import (
    load_trace,
    to_chrome_trace,
    to_jsonl_records,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import WallProfiler
from .tracer import (
    CAT_BACKOFF,
    CAT_CPU,
    CAT_EVAL,
    CAT_FAULT,
    CAT_JOB,
    CAT_LINK,
    CAT_MARK,
    CAT_PLACEMENT,
    CAT_PLAN,
    CAT_QUEUE,
    CAT_STALL,
    Span,
    Trace,
    Tracer,
)

__all__ = [
    "CAT_BACKOFF",
    "CAT_CPU",
    "CAT_EVAL",
    "CAT_FAULT",
    "CAT_JOB",
    "CAT_LINK",
    "CAT_MARK",
    "CAT_PLACEMENT",
    "CAT_PLAN",
    "CAT_QUEUE",
    "CAT_STALL",
    "Counter",
    "Gauge",
    "Histogram",
    "JobPath",
    "MetricsRegistry",
    "RunPath",
    "SEGMENTS",
    "Span",
    "Trace",
    "Tracer",
    "WallProfiler",
    "analyze",
    "decompose",
    "load_trace",
    "to_chrome_trace",
    "to_jsonl_records",
    "write_chrome_trace",
    "write_jsonl",
]
