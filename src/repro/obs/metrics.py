"""Labeled metrics: counters, gauges, and histograms for serving runs.

The :class:`MetricsRegistry` is the structured successor of the ad-hoc
``ServingReport.faults`` / ``ServingReport.actions`` dicts: the engine
folds fault/recovery counters, placement actions, per-job latencies and
per-peer utilization into one registry with labeled instruments, so
benches and the CLI read a single shape instead of scraping dicts.
(The legacy dict fields remain populated with byte-identical content —
they are now *views* the registry absorbs, kept for compatibility.)

Instruments are deterministic, allocation-light python objects — no
background threads, no wall clocks — so a registry can ride a serving
run without perturbing it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: A label set, canonically ordered so equal label dicts are one key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (retries spent, bytes moved)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value


class Gauge:
    """A point-in-time level (queue depth, peer utilization)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = value
        return self.value


class Histogram:
    """A distribution (job latency).  Keeps raw observations.

    At serving-run scale (tens to thousands of jobs) storing the raw
    values beats maintaining bucket boundaries, and lets callers ask
    for any percentile after the fact.
    """

    __slots__ = ("name", "labels", "values")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.values else 0.0

    def percentile(self, q: float) -> float:
        from ..engine.metrics import percentile

        return percentile(self.values, q)


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    ``registry.counter("faults", kind="retries").inc()`` — one instrument
    per ``(name, labels)`` pair, shared by every caller that names it.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instruments -------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1])
        return instrument

    # -- reading -----------------------------------------------------------------
    def counters(self, name: Optional[str] = None) -> List[Counter]:
        return [
            c for (n, _), c in sorted(self._counters.items())
            if name is None or n == name
        ]

    def counter_value(self, name: str, **labels) -> int:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        return instrument.value if instrument is not None else 0

    def flatten(self, name: str, label: str) -> Dict[str, int]:
        """Counters named ``name`` as a ``{label_value: count}`` dict.

        The compatibility bridge: ``flatten("faults", "kind")`` rebuilds
        exactly the legacy ``ServingReport.faults`` mapping.
        """
        out: Dict[str, int] = {}
        for (n, labels), instrument in self._counters.items():
            if n != name:
                continue
            for key, value in labels:
                if key == label:
                    out[value] = out.get(value, 0) + instrument.value
        return out

    def to_dict(self) -> Dict[str, object]:
        """A stable, JSON-ready image of every instrument."""
        image: Dict[str, object] = {"counters": [], "gauges": [], "histograms": []}
        for (name, labels), c in sorted(self._counters.items()):
            image["counters"].append(
                {"name": name, "labels": dict(labels), "value": c.value}
            )
        for (name, labels), g in sorted(self._gauges.items()):
            image["gauges"].append(
                {"name": name, "labels": dict(labels), "value": g.value}
            )
        for (name, labels), h in sorted(self._histograms.items()):
            image["histograms"].append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "count": h.count,
                    "sum": h.sum,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                }
            )
        return image

    def describe(self) -> str:
        lines = []
        for (name, labels), c in sorted(self._counters.items()):
            tag = _format_labels(labels)
            lines.append(f"{name}{tag}: {c.value}")
        for (name, labels), g in sorted(self._gauges.items()):
            tag = _format_labels(labels)
            lines.append(f"{name}{tag}: {g.value:.6g}")
        for (name, labels), h in sorted(self._histograms.items()):
            tag = _format_labels(labels)
            lines.append(
                f"{name}{tag}: n={h.count} mean={h.mean:.6g} "
                f"p50={h.percentile(50):.6g} p95={h.percentile(95):.6g} "
                f"p99={h.percentile(99):.6g}"
            )
        return "\n".join(lines)


def _format_labels(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
