"""Critical-path latency decomposition: where a job's latency went.

Every traced job owns a span tree whose leaves are *resource intervals*
— link occupancy, CPU charges, retry backoffs, stalls, queue waits.
:func:`decompose` partitions the job's whole ``[arrival, settle]``
window into exclusive segments by sweeping those leaves: at each
elementary interval the highest-priority active resource claims the
time, so the segments are disjoint and **sum exactly to the job's
measured latency** (the property the tests pin).

Priority (``cpu > link > backoff > stall > queue``) encodes "blame real
work before blame waiting": when a fan-out has one branch computing
while another queues, the instant counts as compute.  Time covered by
no leaf at all is ``other`` — scheduler bookkeeping and zero-cost local
evaluation.

:func:`analyze` folds a whole :class:`~repro.obs.tracer.Trace` into a
:class:`RunPath` naming the run's bottleneck resource — the signal the
raw-speed roadmap item needs to aim a rework at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .tracer import (
    CAT_BACKOFF,
    CAT_CPU,
    CAT_LINK,
    CAT_QUEUE,
    CAT_STALL,
    Span,
    Trace,
)

__all__ = ["JobPath", "RunPath", "SEGMENTS", "analyze", "decompose"]

#: Segment categories, in claim-priority order; ``other`` catches time
#: covered by no resource leaf.
SEGMENTS: Tuple[str, ...] = (
    CAT_CPU,
    CAT_LINK,
    CAT_BACKOFF,
    CAT_STALL,
    CAT_QUEUE,
    "other",
)

_RESOURCE_CATS = frozenset(SEGMENTS[:-1])


@dataclass
class JobPath:
    """One job's latency decomposition."""

    job: str
    start: float
    end: float
    #: category -> exclusive virtual seconds; keys are :data:`SEGMENTS`.
    segments: Dict[str, float] = field(default_factory=dict)

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def total(self) -> float:
        """Sum of all segments — equals :attr:`latency` by construction."""
        return sum(self.segments.values())

    @property
    def bottleneck(self) -> str:
        """The resource category claiming the most of this job's latency."""
        best = "other"
        best_value = -1.0
        for cat in SEGMENTS:
            value = self.segments.get(cat, 0.0)
            if value > best_value:
                best, best_value = cat, value
        return best

    def describe(self) -> str:
        parts = []
        for cat in SEGMENTS:
            value = self.segments.get(cat, 0.0)
            if value > 0:
                share = value / self.latency if self.latency > 0 else 0.0
                parts.append(f"{cat} {value * 1000:.3f}ms ({share:.0%})")
        detail = ", ".join(parts) if parts else "instantaneous"
        return (
            f"{self.job}: latency {self.latency * 1000:.3f}ms = {detail}"
            f"  -> bottleneck: {self.bottleneck}"
        )


@dataclass
class RunPath:
    """Whole-run decomposition: per-job paths plus fleet totals."""

    jobs: List[JobPath] = field(default_factory=list)

    @property
    def totals(self) -> Dict[str, float]:
        out = {cat: 0.0 for cat in SEGMENTS}
        for path in self.jobs:
            for cat, value in path.segments.items():
                out[cat] = out.get(cat, 0.0) + value
        return out

    @property
    def bottleneck(self) -> str:
        """The resource dominating summed latency across every job."""
        totals = self.totals
        return max(SEGMENTS, key=lambda cat: totals.get(cat, 0.0))

    def job(self, name: str) -> JobPath:
        for path in self.jobs:
            if path.job == name:
                return path
        raise KeyError(f"no decomposed job named {name!r}")

    def describe(self) -> str:
        lines = [path.describe() for path in self.jobs]
        totals = self.totals
        total_latency = sum(path.latency for path in self.jobs) or 1.0
        summary = ", ".join(
            f"{cat} {totals[cat] * 1000:.3f}ms "
            f"({totals[cat] / total_latency:.0%})"
            for cat in SEGMENTS
            if totals.get(cat, 0.0) > 0
        )
        lines.append(
            f"fleet: {summary or 'no latency recorded'}"
            f"  -> bottleneck resource: {self.bottleneck}"
        )
        return "\n".join(lines)


def decompose(root: Span) -> JobPath:
    """Partition a job span's window into exclusive resource segments.

    Leaves outside ``[root.start, root.end]`` are clipped; the returned
    segments are disjoint and sum to ``root.end - root.start`` exactly
    (up to float summation), which the property tests assert against the
    job's measured latency.
    """
    lo, hi = root.start, root.end
    intervals: List[Tuple[float, float, str]] = []
    boundaries = {lo, hi}
    for leaf in root.leaves():
        if leaf.cat not in _RESOURCE_CATS:
            continue
        start = max(leaf.start, lo)
        end = min(leaf.end, hi)
        if end <= start:
            continue
        intervals.append((start, end, leaf.cat))
        boundaries.add(start)
        boundaries.add(end)
    edges = sorted(boundaries)
    segments = {cat: 0.0 for cat in SEGMENTS}
    for left, right in zip(edges, edges[1:]):
        width = right - left
        if width <= 0:
            continue
        active = {
            cat for start, end, cat in intervals
            if start <= left and end >= right
        }
        for cat in SEGMENTS[:-1]:
            if cat in active:
                segments[cat] += width
                break
        else:
            segments["other"] += width
    return JobPath(job=root.name, start=lo, end=hi, segments=segments)


def analyze(trace: Trace) -> RunPath:
    """Decompose every traced job; returns the run-level picture."""
    return RunPath(jobs=[decompose(root) for root in trace.jobs.values()])
