"""Virtual-clock span trees: the deterministic tracing core.

A :class:`Tracer` records *what the simulator already knows* — when a
transfer occupied a link, when a CPU picked a job up, how long a retry
backed off — as a tree of :class:`Span`\\ s per served job, all stamped
on the **virtual clock**.  Recording is purely observational:

* it spends no randomness (no RNG is ever consulted),
* it charges no virtual time (spans copy instants the engine computed
  anyway),
* and with no tracer installed (the default) every instrumentation
  point is a single ``is None`` check — the event traces and answers
  are byte-identical to an untraced run (differential-tested).

The span tree mirrors a job's causal phases: a ``job`` root covering
arrival → settle, with ``plan`` (cache hits, strategy, plans explored),
``queue`` (admission + CPU waits), and ``eval`` children — the ``eval``
span owning one leaf per transfer hop (bytes included), per CPU charge,
per retry-backoff window, and per injected stall/hang.  Run-level spans
(placement actions, fault windows, scheduler marks) live next to the
jobs on :attr:`Trace.run`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = [
    "CAT_BACKOFF",
    "CAT_CPU",
    "CAT_EVAL",
    "CAT_FAULT",
    "CAT_JOB",
    "CAT_LINK",
    "CAT_MARK",
    "CAT_PLACEMENT",
    "CAT_PLAN",
    "CAT_QUEUE",
    "CAT_STALL",
    "Span",
    "Trace",
    "Tracer",
]

#: Span categories.  The resource categories (queue/link/cpu/backoff/
#: stall) are what :mod:`repro.obs.critical_path` decomposes latency
#: over; the structural ones (job/plan/eval/mark) shape the tree.
CAT_JOB = "job"
CAT_PLAN = "plan"
CAT_EVAL = "eval"
CAT_QUEUE = "queue"
CAT_LINK = "link"
CAT_CPU = "cpu"
CAT_BACKOFF = "backoff"
CAT_STALL = "stall"
CAT_FAULT = "fault"
CAT_PLACEMENT = "placement"
CAT_MARK = "mark"


class Span:
    """One named interval ``[start, end]`` on the virtual clock.

    ``attrs`` carry structured payload (bytes moved, peers involved,
    cache counters); ``children`` make it a tree.  Spans are plain
    mutable records — cheap to allocate on the hot path — with
    ``__slots__`` keeping the per-span footprint small.
    """

    __slots__ = ("name", "cat", "start", "end", "attrs", "children")

    def __init__(
        self,
        name: str,
        cat: str,
        start: float,
        end: Optional[float] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.end = start if end is None else end
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return self.end - self.start

    def walk(self) -> Iterator["Span"]:
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> Iterator["Span"]:
        """Every childless descendant (the resource-level intervals)."""
        for span in self.walk():
            if not span.children:
                yield span

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        extra = ""
        if self.attrs:
            parts = ", ".join(
                f"{key}={value}" for key, value in sorted(self.attrs.items())
            )
            extra = f"  [{parts}]"
        lines = [
            f"{pad}{self.name} ({self.cat}) "
            f"{self.start * 1000:.3f}ms -> {self.end * 1000:.3f}ms "
            f"(+{self.duration * 1000:.3f}ms){extra}"
        ]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.cat!r}, "
            f"[{self.start:.6f}, {self.end:.6f}], "
            f"children={len(self.children)})"
        )


class Trace:
    """A finished recording: job span trees plus run-level spans.

    What :attr:`ServingReport.trace
    <repro.engine.metrics.ServingReport.trace>` holds after a traced
    drain.  ``jobs`` maps job name → ``job`` root span in admission
    order; ``run`` holds scheduler-, placement-action- and
    fault-window-spans that belong to the whole run rather than to one
    job.
    """

    def __init__(
        self,
        jobs: Optional[Dict[str, Span]] = None,
        run: Optional[List[Span]] = None,
    ) -> None:
        self.jobs: Dict[str, Span] = dict(jobs or {})
        self.run: List[Span] = list(run or [])

    def job(self, name: str) -> Span:
        try:
            return self.jobs[name]
        except KeyError:
            raise KeyError(
                f"no traced job named {name!r}; "
                f"traced: {sorted(self.jobs)}"
            ) from None

    def job_names(self) -> List[str]:
        return list(self.jobs)

    def spans(self) -> Iterator[Span]:
        """Every span in the trace (jobs first, then run-level)."""
        for root in self.jobs.values():
            yield from root.walk()
        for span in self.run:
            yield from span.walk()

    def __len__(self) -> int:
        return sum(1 for _ in self.spans())

    def describe(self) -> str:
        lines = [f"trace: {len(self.jobs)} job(s), {len(self.run)} run span(s)"]
        for name, root in self.jobs.items():
            lines.append(root.describe(indent=1))
        if self.run:
            lines.append("run:")
            for span in self.run:
                lines.append(span.describe(indent=1))
        return "\n".join(lines)


class Tracer:
    """Records span trees as the engine hands it instants.

    One tracer serves one run at a time: the scheduler (or a single
    :meth:`Session.query <repro.session.Session.query>` execution)
    calls :meth:`reset` at run start, so a session-level tracer always
    holds the *latest* run's trace — grab :meth:`trace` (a snapshot)
    before starting the next run to keep older recordings.

    The per-job context is a plain stack: the simulator is a
    single-threaded discrete-event loop, so at any wall instant at most
    one job is being evaluated (virtual intervals interleave; wall
    execution does not), and ``begin_job`` / ``end_job`` bracket it.
    Records arriving outside any job (e.g. fault windows discovered at
    install time) land on the run-level list.
    """

    def __init__(self) -> None:
        self.jobs: Dict[str, Span] = {}
        self.run: List[Span] = []
        self._stack: List[Span] = []

    # -- lifecycle ---------------------------------------------------------------
    def reset(self) -> None:
        """Drop everything recorded so far (a new run is starting)."""
        self.jobs = {}
        self.run = []
        self._stack = []

    def trace(self) -> Trace:
        """Snapshot the recording as an immutable-by-convention Trace."""
        return Trace(jobs=self.jobs, run=self.run)

    # -- job context -------------------------------------------------------------
    def begin_job(self, name: str, start: float, **attrs) -> Span:
        """Open a job's root span; subsequent records nest under it."""
        key = name
        serial = 2
        while key in self.jobs:  # duplicate client-chosen names
            key = f"{name}#{serial}"
            serial += 1
        root = Span(key, CAT_JOB, start, start, attrs=dict(attrs))
        self.jobs[key] = root
        self._stack = [root]
        return root

    def end_job(self, end: float, **attrs) -> None:
        """Close the current job's root span and clear the context."""
        if not self._stack:
            return
        root = self._stack[0]
        root.end = max(root.end, end)
        root.attrs.update(attrs)
        self._stack = []

    def push(self, name: str, cat: str, start: float, **attrs) -> Span:
        """Open a nested span; records nest under it until :meth:`pop`."""
        span = Span(name, cat, start, start, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.run.append(span)
        self._stack.append(span)
        return span

    def pop(self, end: float, **attrs) -> None:
        """Close the innermost open span (never the job root)."""
        if len(self._stack) <= 1:
            return
        span = self._stack.pop()
        span.end = max(span.start, end)
        span.attrs.update(attrs)

    # -- leaf records ------------------------------------------------------------
    def record(
        self, name: str, cat: str, start: float, end: float, **attrs
    ) -> Span:
        """One leaf interval under the current context (or run level)."""
        span = Span(name, cat, start, end, attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.run.append(span)
        return span

    def mark(self, name: str, cat: str, at: float, **attrs) -> Span:
        """A zero-duration instant (placement action, settle, crash)."""
        return self.record(name, cat, at, at, **attrs)

    def run_span(
        self, name: str, cat: str, start: float, end: float, **attrs
    ) -> Span:
        """A span attached to the run, regardless of open job context."""
        span = Span(name, cat, start, end, attrs=dict(attrs))
        self.run.append(span)
        return span

    # -- engine-facing helpers (the instrumentation points call these) ------------
    def hop(self, message, link, ready: float, start: float, arrival: float) -> None:
        """One transfer hop: optional link-queue wait, then the occupancy.

        Called by :meth:`Network.deliver <repro.net.network.Network.deliver>`
        per link on the route, with the instants the link itself computed
        — nothing here feeds back into timing.
        """
        if start > ready:
            self.record(
                f"link-wait {link.src}->{link.dst}",
                CAT_QUEUE,
                ready,
                start,
                resource=f"link {link.src}->{link.dst}",
            )
        self.record(
            f"hop {link.src}->{link.dst}",
            CAT_LINK,
            start,
            arrival,
            bytes=message.size,
            kind=message.kind,
            src=message.src,
            dst=message.dst,
        )

    def cpu(
        self,
        peer_id: str,
        label: str,
        ready: float,
        busy_before: float,
        done: float,
    ) -> None:
        """One CPU charge: optional compute-queue wait, then the work."""
        start = busy_before if busy_before > ready else ready
        if start > done:  # zero-work charge ordered oddly; clamp
            start = done
        if start > ready:
            self.record(
                f"cpu-wait {peer_id}",
                CAT_QUEUE,
                ready,
                start,
                resource=f"cpu {peer_id}",
            )
        self.record(
            f"{label} @{peer_id}", CAT_CPU, start, done, peer=peer_id
        )
