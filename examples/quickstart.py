#!/usr/bin/env python3
"""Quickstart: distributed XML querying with algebraic optimization.

This walks the paper's core loop in ~60 lines of user code:

1. build a small peer system (a laptop and a data server);
2. install an XML document on the server;
3. write the naive plan — "apply my query to that remote document";
4. let the optimizer rewrite it with the paper's equivalence rules;
5. run both, compare answers (identical) and costs (not identical).

Run:  python examples/quickstart.py
"""

from repro.core import (
    DocExpr,
    ExpressionEvaluator,
    Optimizer,
    Plan,
    QueryApply,
    QueryRef,
    check_equivalence,
    measure,
)
from repro.peers import AXMLSystem
from repro.xmlcore import parse, serialize
from repro.xquery import Query


def build_system() -> AXMLSystem:
    """Two peers on a modest (500 kB/s, 20 ms) link."""
    system = AXMLSystem.with_peers(
        ["laptop", "server"], bandwidth=500_000.0, latency=0.02
    )
    catalog = parse(
        "<catalog>"
        + "".join(
            f"<item><name>item-{i}</name><price>{i}</price>"
            f"<desc>{'lorem ipsum ' * 5}</desc></item>"
            for i in range(500)
        )
        + "</catalog>"
    )
    system.peer("server").install_document("catalog", catalog)
    return system


def main() -> None:
    system = build_system()

    # A query defined at the laptop, over data living at the server.
    query = Query(
        "for $i in $d//item where $i/price > 495 "
        "return <expensive>{$i/name/text()}</expensive>",
        params=("d",),
        name="expensive-items",
    )
    naive = Plan(
        QueryApply(QueryRef(query, "laptop"), (DocExpr("catalog", "server"),)),
        "laptop",
    )

    print("naive plan:     ", naive.describe())
    naive_cost = measure(naive, system)
    print("naive cost:     ", naive_cost.describe())

    result = Optimizer(system).optimize(naive, depth=2, beam=6)
    print("optimized plan: ", result.best.describe())
    print("optimized cost: ", result.best_cost.describe())
    print(f"improvement:     x{result.improvement:.1f} "
          f"({naive_cost.bytes}B -> {result.best_cost.bytes}B shipped)")

    verdict = check_equivalence(naive, result.best, system)
    print("equivalent?     ", verdict.equivalent, f"({verdict.reason})")

    outcome = ExpressionEvaluator(system.clone()).eval(
        result.best.expr, result.best.site
    )
    print("answers:        ", ", ".join(serialize(i) for i in outcome.items))


if __name__ == "__main__":
    main()
