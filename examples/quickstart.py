#!/usr/bin/env python3
"""Quickstart: distributed XML querying with algebraic optimization.

The paper's core loop — declare a query over remote AXML data, rewrite
it with equivalence rules (10)–(16), cost the alternatives, run the
cheapest — is one `Session` call:

1. build a small peer system (a laptop and a data server);
2. install an XML document on the server;
3. `repro.connect(system).query(...)` — the session parses the query,
   builds the naive plan, optimizes, machine-verifies the rewrite, and
   evaluates it;
4. the returned `ExecutionReport` carries answers, plans, costs and
   per-peer traffic in one object.

Run:  python examples/quickstart.py
"""

import repro
from repro.peers import AXMLSystem
from repro.xmlcore import parse


def build_system() -> AXMLSystem:
    """Two peers on a modest (500 kB/s, 20 ms) link."""
    system = AXMLSystem.with_peers(
        ["laptop", "server"], bandwidth=500_000.0, latency=0.02
    )
    catalog = parse(
        "<catalog>"
        + "".join(
            f"<item><name>item-{i}</name><price>{i}</price>"
            f"<desc>{'lorem ipsum ' * 5}</desc></item>"
            for i in range(500)
        )
        + "</catalog>"
    )
    system.peer("server").install_document("catalog", catalog)
    return system


def main() -> None:
    system = build_system()

    # A query defined at the laptop, over data living at the server.
    session = repro.connect(system, verify=True)
    report = session.query(
        "for $i in $d//item where $i/price > 495 "
        "return <expensive>{$i/name/text()}</expensive>",
        at="laptop",
        bind={"d": "catalog@server"},
        name="expensive-items",
    )

    print(report.describe())
    print(f"shipped:     {report.original_cost.bytes}B -> "
          f"{report.best_cost.bytes}B")
    print("answers:    ", ", ".join(report.answers))


if __name__ == "__main__":
    main()
