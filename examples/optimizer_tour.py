#!/usr/bin/env python3
"""A guided tour of the seven equivalence rules (paper Section 3.3).

For each rule (10)-(16) this builds the smallest system exhibiting it,
shows the naive plan, every rewrite the rule proposes, the measured cost
of each, and the machine-checked equivalence verdict — the executable
version of the paper's rule catalogue.  A closing section runs one plan
through all three registered cost models (oracle / analytic / hybrid)
to show that pricing changes the speed of the search, not its outcome.

Run:  python examples/optimizer_tour.py
"""

import time

from repro import Session
from repro.core import (
    BeamSearchStrategy,
    DelegateExpression,
    DocDest,
    DocExpr,
    Plan,
    PushQueryOverCall,
    PushSelection,
    QueryApply,
    QueryDelegation,
    QueryRef,
    RelocateCall,
    Reroute,
    Send,
    ServiceCallExpr,
    TransferReuse,
    TreeExpr,
)
from repro.peers import AXMLSystem
from repro.xmlcore import element, parse
from repro.xquery import Query


def catalog(n=80):
    return parse(
        "<catalog>"
        + "".join(
            f"<item><name>n{i}</name><price>{i}</price>"
            f"<desc>{'text ' * 6}</desc></item>"
            for i in range(n)
        )
        + "</catalog>"
    )


def fresh_system():
    system = AXMLSystem.with_peers(
        ["client", "data", "helper"], bandwidth=80_000.0
    )
    system.peer("data").install_document("cat", catalog())
    system.peer("data").install_query_service(
        "all-items",
        "declare variable $d external; <all>{$d//item}</all>",
        params=("d",),
    )
    return system


def selection_query():
    return Query(
        "for $i in $d//item where $i/price > 75 return <r>{$i/name/text()}</r>",
        params=("d",),
        name="sel",
    )


def show(rule, plan, system):
    """One report per rule: a single-rule, depth-1 session explains the
    plan, so the trace lists exactly the alternatives that rule proposes.

    With ``verify=True`` every kept rewrite is machine-checked ≡ the
    original — a non-equivalent proposal would be dropped from the trace
    (and a `≠(!)` would never survive into the report).
    """
    session = Session(
        system,
        strategy=BeamSearchStrategy(depth=1, beam=16),
        rules=[rule],
        verify=True,
        trace=True,
    )
    report = session.explain(plan)
    print(f"\n=== {rule.name} ===")
    if report.explored == 1:
        print(f"  naive: {plan.describe()}")
        if rule.apply(plan, system):
            # matched, but every proposal was unevaluable or non-equivalent
            print("  (no rewrite survived scoring/verification)")
        else:
            print("  (rule does not match this plan)")
        return
    print(report.describe(include_trace=True))


def main():
    # (10) query delegation --------------------------------------------------
    system = fresh_system()
    plan10 = Plan(
        QueryApply(QueryRef(selection_query(), "client"), (DocExpr("cat", "data"),)),
        "client",
    )
    show(QueryDelegation(all_peers=True), plan10, system)

    # (11) pushing selections (Example 1) -------------------------------------
    show(PushSelection(), plan10, system)

    # (12) rerouting a transfer ------------------------------------------------
    system = fresh_system()
    plan12 = Plan(Send(DocDest("copy", "helper"), DocExpr("cat", "data")), "data")
    show(Reroute(), plan12, system)

    # (13) transfer reuse ----------------------------------------------------------
    system = fresh_system()
    both = Query(
        "declare variable $a external; declare variable $b external; "
        "count($a//item) + count($b//item)",
        params=("a", "b"),
        name="both",
    )
    plan13 = Plan(
        QueryApply(
            QueryRef(both, "client"),
            (DocExpr("cat", "data"), DocExpr("cat", "data")),
        ),
        "client",
    )
    show(TransferReuse(), plan13, system)

    # (14) whole-expression delegation ------------------------------------------------
    show(DelegateExpression(), plan10, fresh_system())

    # (15) relocating a call with a forward list ----------------------------------------
    system = fresh_system()
    inbox = element("inbox")
    system.peer("helper").install_document("acc", inbox)
    params = parse("<catalog><item><name>x</name><price>9</price></item></catalog>")
    plan15 = Plan(
        ServiceCallExpr(
            "data", "all-items", (TreeExpr(params, "client"),), (inbox.node_id,)
        ),
        "client",
    )
    show(RelocateCall(), plan15, system)

    # (16) pushing a query over a service call ---------------------------------------------
    system = fresh_system()
    consumer = Query(
        "for $i in $r//item where $i/price > 77 return $i/name",
        params=("r",),
        name="consumer",
    )
    plan16 = Plan(
        QueryApply(
            QueryRef(consumer, "client"),
            (ServiceCallExpr("data", "all-items", (DocExpr("cat", "data"),)),),
        ),
        "client",
    )
    show(PushQueryOverCall(), plan16, system)

    # cost models: same search, three ways of pricing candidates -----------------
    print("\n=== cost models (oracle / analytic / hybrid) ===")
    for mode in ("oracle", "analytic", "hybrid"):
        system = fresh_system()
        session = Session(system, cost_model=mode)
        started = time.perf_counter()
        report = session.explain(plan10)
        wall = (time.perf_counter() - started) * 1000
        print(
            f"  {mode:9s} best {report.best_cost.describe():32s} "
            f"plan {report.plan.describe()}  ({wall:.1f}ms wall)"
        )
    print(
        "  (analytic prices candidates from sampled catalog statistics,\n"
        "   hybrid oracle-checks only the chosen plan — same best plan,\n"
        "   a fraction of the search wall time)"
    )


if __name__ == "__main__":
    main()
