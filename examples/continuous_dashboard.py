#!/usr/bin/env python3
"""Continuous services and streams: a sensor dashboard.

The paper treats every service as *continuous*: responses keep arriving
and accumulate under target nodes, and queries over streams re-emit
output as new input lands (Section 2.2 / discussion after definition (2)).

This example wires a three-stage continuous pipeline:

    sensors --(stream)--> monitor --(incremental query)--> dashboard

and contrasts the two continuous-query execution modes benchmarked in E8:
incremental (per-delta) versus re-evaluation (whole-history re-run) —
same answers, very different work.

(Streams sit *below* the request/report layer, so this example drives the
core evaluator directly rather than the `repro.connect` Session façade —
one-shot query pipelines belong there, continuous pipelines here.)

Run:  python examples/continuous_dashboard.py
"""

import random

from repro.axml import IncrementalQuery, StreamChannel
from repro.core import NodesDest, Send, TreeExpr, ExpressionEvaluator
from repro.peers import AXMLSystem
from repro.xmlcore import element, parse, pretty
from repro.xquery import Query

N_READINGS = 40
ALERT_THRESHOLD = 75


def main() -> None:
    rng = random.Random(7)
    system = AXMLSystem.with_peers(["sensor", "monitor", "dashboard"])

    readings = element("readings")
    system.peer("monitor").install_document("readings", readings)
    alerts = element("alerts")
    system.peer("dashboard").install_document("alerts", alerts)

    channel = StreamChannel("temperature", "sensor", system)
    channel.subscribe(readings.node_id)

    alert_query = Query(
        "for $r in $in where number($r/value) > "
        f"{ALERT_THRESHOLD} "
        "return <alert sensor='{$r/@id}'>{$r/value/text()}</alert>",
        params=("in",),
        name="over-threshold",
    )
    incremental = IncrementalQuery(alert_query, mode="incremental")
    reevaluating = IncrementalQuery(alert_query, mode="reevaluate")

    evaluator = ExpressionEvaluator(system)
    for index in range(N_READINGS):
        value = rng.randint(0, 100)
        reading = parse(
            f"<reading id='s{index % 4}'><value>{value}</value></reading>"
        )
        channel.emit(reading)
        fresh = incremental.push(reading)
        reevaluating.push(reading.copy())
        # forward each fresh alert to the dashboard (a send expression)
        for alert in fresh:
            evaluator.eval(
                Send(NodesDest((alerts.node_id,)), TreeExpr(alert, "monitor")),
                "monitor",
            )

    print(f"emitted {N_READINGS} readings; "
          f"{len(readings.element_children)} accumulated at the monitor")
    print(f"alerts on the dashboard: {len(alerts.element_children)}")
    print()
    print("dashboard document:")
    print(pretty(alerts))
    print()
    print("== work comparison (same answers, different execution modes) ==")
    assert len(incremental.outputs) == len(reevaluating.outputs)
    print(f"incremental  : {incremental.trees_processed} trees processed")
    print(f"re-evaluation: {reevaluating.trees_processed} trees processed "
          f"(quadratic in stream length)")
    print()
    print("network: ", system.network.stats.messages, "messages,",
          system.network.stats.bytes, "bytes")


if __name__ == "__main__":
    main()
