#!/usr/bin/env python3
"""The eDos-style software-distribution application (paper Section 4 /
extended version): package catalogs replicated on mirrors as *generic
documents*, clients resolving dependencies with pushed selections, and a
continuous update feed keeping mirrors equivalent.

Scenario:

* a ``hub`` publishes package metadata updates as a continuous stream;
* two ``mirror-*`` peers replicate the catalog; the registry groups them
  into the generic document ``packages@any``;
* clients (``alice`` in Paris near mirror-eu, ``bob`` in Tokyo near
  mirror-ap) resolve package dependencies; each client's pick policy
  chooses its nearest mirror (definition (9));
* the dependency query runs through the optimizer, which pushes the
  selection to the mirror (Example 1) instead of downloading the catalog.

Run:  python examples/edos_distribution.py
"""

import repro
from repro.axml import StreamChannel
from repro.peers import AXMLSystem, NearestPolicy
from repro.xmlcore import parse

N_PACKAGES = 400


def build_catalog():
    """Package metadata with a dependency edge every few packages."""
    items = []
    for i in range(N_PACKAGES):
        deps = "".join(
            f"<dep>pkg-{j}</dep>" for j in range(max(0, i - 2), i) if j % 3 == 0
        )
        items.append(
            f"<pkg><name>pkg-{i}</name><section>{'libs' if i % 2 else 'apps'}</section>"
            f"<size>{(i * 53) % 2048}</size>{deps}</pkg>"
        )
    return parse("<packages>" + "".join(items) + "</packages>")


def build_world() -> AXMLSystem:
    system = AXMLSystem.with_peers(
        ["hub", "mirror-eu", "mirror-ap", "alice", "bob"],
        bandwidth=300_000.0,
        latency=0.01,
    )
    # geography: alice near mirror-eu, bob near mirror-ap
    for a, b, ms in [
        ("alice", "mirror-ap", 0.28), ("mirror-ap", "alice", 0.28),
        ("bob", "mirror-eu", 0.28), ("mirror-eu", "bob", 0.28),
        ("alice", "mirror-eu", 0.008), ("mirror-eu", "alice", 0.008),
        ("bob", "mirror-ap", 0.008), ("mirror-ap", "bob", 0.008),
    ]:
        system.network.link(a, b).latency = ms

    catalog = build_catalog()
    for mirror in ("mirror-eu", "mirror-ap"):
        system.peer(mirror).install_document("packages", catalog.copy())
        system.registry.register_document("packages", "packages", mirror)
    return system


DEPENDENCY_QUERY = (
    "for $p in $d//pkg where $p/section = 'apps' "
    "return <candidate name='{$p/name}' size='{$p/size}'/>"
)


def main() -> None:
    system = build_world()

    print("== replica consistency ==")
    consistent = system.registry.check_document_equivalence("packages", system)
    print("mirrors equivalent:", consistent)

    print("\n== per-client resolution (generic document + nearest pick) ==")
    # One session, one pick policy; each client's resolution is a batch
    # entry binding $d to the *generic* document packages@any (def. (9)).
    session = repro.connect(
        system,
        pick_policy=NearestPolicy(),
        strategy="beam",
        strategy_options={"depth": 2, "beam": 4},
    )
    reports = session.batch(
        [
            {"source": DEPENDENCY_QUERY, "at": client,
             "bind": {"d": "packages@any"}, "name": f"deps-{client}"}
            for client in ("alice", "bob")
        ]
    )
    for client, report in zip(("alice", "bob"), reports):
        print(
            f"{client:6s} naive {report.original_cost.describe():>32s}   "
            f"optimized {report.best_cost.describe():>30s}"
        )
        print(f"       {len(report.items)} candidate packages resolved")

    print("\n== continuous update feed ==")
    channel = StreamChannel("pkg-updates", "hub", system)
    for mirror in ("mirror-eu", "mirror-ap"):
        target = system.peer(mirror).document("packages")
        channel.subscribe(target.node_id)
    for version in range(3):
        channel.emit(parse(
            f"<pkg><name>hotfix-{version}</name><section>apps</section>"
            f"<size>10</size></pkg>"
        ))
    print("updates emitted:", len(channel.emitted))
    print(
        "mirrors still equivalent:",
        system.registry.check_document_equivalence("packages", system),
    )
    sizes = {
        mirror: len(system.peer(mirror).document("packages").element_children)
        for mirror in ("mirror-eu", "mirror-ap")
    }
    print("catalog sizes:", sizes)


if __name__ == "__main__":
    main()
